"""The staged solver API: :class:`Solver`, :class:`GatherTable`, :class:`Placement`.

SOAR is a two-phase algorithm — an expensive gather dynamic program followed
by a cheap colouring trace — and this module makes that structure the public
API instead of hiding it behind keyword-threaded free functions:

* :class:`Solver` binds the engine, the budget semantics, and the colour
  kernel **once**; every artifact it produces records that provenance.
* :class:`GatherTable` is the immutable product of the gather phase.  A
  table gathered at budget ``k`` carries every column ``0 .. k``, so one
  table answers *every* smaller budget through :meth:`GatherTable.cost`,
  :meth:`GatherTable.place`, and :meth:`GatherTable.sweep` without touching
  the gather again — the service cache, budget sweeps, and figure harnesses
  all reuse tables through exactly this surface.
* :class:`Placement` is the product of the colour phase: the blue set, its
  recomputed utilization, and the DP optimum it was traced from.

Example
-------
>>> from repro.topology import complete_binary_tree
>>> from repro.core.solver import Solver
>>> solver = Solver()
>>> tree = complete_binary_tree(4, leaf_loads=[2, 6, 5, 4])
>>> table = solver.gather(tree, max_budget=4)
>>> table.cost(2)
20.0
>>> placement = table.place(2)
>>> sorted(placement.blue_nodes)
['s1_1', 's2_1']
>>> [table.cost(k) for k in range(1, 5)]
[35.0, 20.0, 15.0, 11.0]

Reuse safety
------------
A :class:`GatherTable` knows the engine and semantics it was built under
and refuses to be passed off as anything else: :meth:`GatherTable.require`
raises :class:`~repro.exceptions.EngineMismatchError` or
:class:`~repro.exceptions.SemanticsMismatchError` on a mismatch, closing
the historical hole where ``solve(..., gathered=...)`` silently traced
at-most-k answers out of exactly-k tables (or vice versa).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field, replace

from repro.core.color import COLOR_KERNELS, DEFAULT_COLOR, trace_color
from repro.core.cost import COST_KERNELS, DEFAULT_COST, FLAT_COST, evaluate_cost
from repro.core.engine import (
    DEFAULT_ENGINE,
    ENGINES,
    gather as run_gather,
    repair as run_repair,
)
from repro.core.flat import FlatCostModel, cost_model_for
from repro.core.gather import GatherResult, normalize_budget
from repro.core.tree import NodeId, TreeNetwork
from repro.exceptions import (
    EngineMismatchError,
    InvalidBudgetError,
    SemanticsMismatchError,
)

__all__ = ["GatherTable", "Placement", "Solver"]


@dataclass(frozen=True)
class Placement:
    """Product of the colour phase: an optimal blue set and its cost.

    Attributes
    ----------
    blue_nodes:
        The selected aggregation switches ``U`` (``|U| <= budget``).
    cost:
        The utilization complexity ``phi(T, L, U)``, recomputed from the
        Reduce message counts (not just read from the DP table) so it is
        verifiable against the cost module.
    predicted_cost:
        The optimum announced by the gather table ``X_r(1, k)``; equal to
        ``cost`` whenever the tables are consistent, which the test-suite
        asserts on every solve.
    budget:
        The effective budget ``k`` this placement was traced for.
    table:
        The :class:`GatherTable` the placement was traced from, kept for
        follow-up sweeps and diagnostics.
    """

    blue_nodes: frozenset[NodeId]
    cost: float
    predicted_cost: float
    budget: int
    table: "GatherTable"

    @property
    def num_blue(self) -> int:
        """Number of aggregation switches actually used."""
        return len(self.blue_nodes)


@dataclass(frozen=True)
class GatherTable:
    """Immutable product of the gather phase, with provenance.

    Produced by :meth:`Solver.gather`; reusable for every budget up to
    :attr:`budget`.  The artifact owns the instance it was gathered for
    (``tree``), so placing from a table needs no external state — which is
    what lets the service answer warm cache hits without reconstructing
    the workload network.

    Attributes
    ----------
    result:
        The raw per-node DP tables (:class:`~repro.core.gather.GatherResult`).
    tree:
        The φ-BIC instance the tables were gathered for (topology, rates,
        loads, Λ).
    engine:
        Gather engine that built the tables.
    exact_k:
        Budget semantics the tables encode.
    color:
        Colour kernel :meth:`place` uses by default (bound from the
        producing :class:`Solver`).
    fingerprint:
        Digest of the full instance (:meth:`TreeNetwork.fingerprint`);
        equal fingerprints mean the table is valid verbatim for the other
        instance.
    cost_kernel:
        Cost kernel :meth:`place` recomputes the achieved utilization
        with (bound from the producing :class:`Solver`; the flat default
        reuses the trace metadata the artifact already carries, so a warm
        table hit never rebuilds the per-link message-count dicts).
    repaired_from:
        Repair lineage: the fingerprint of the table this one was
        delta-repaired out of (:meth:`repair`), ``None`` for a cold
        gather.  Purely provenance — repaired tables are bit-identical to
        cold ones.
    repair_generation:
        Number of repairs between this table and its cold-gathered
        ancestor (0 for a cold gather).
    """

    result: GatherResult = field(repr=False)
    tree: TreeNetwork = field(repr=False)
    engine: str
    exact_k: bool
    color: str
    fingerprint: str
    cost_kernel: str = DEFAULT_COST
    repaired_from: str | None = field(default=None, repr=False)
    repair_generation: int = 0

    @property
    def budget(self) -> int:
        """Largest budget the tables can answer (requested ``k`` clamped to ``|Λ|``)."""
        return self.result.budget

    @property
    def requested_budget(self) -> int:
        """The budget :meth:`Solver.gather` was asked for."""
        return self.result.requested_budget

    @property
    def root(self) -> NodeId:
        """Root switch of the instance the tables belong to."""
        return self.result.root

    def require(self, engine: str | None = None, exact_k: bool | None = None) -> None:
        """Assert the table may be reused under the given settings.

        Raises
        ------
        EngineMismatchError
            If ``engine`` is given and differs from the table's engine.
        SemanticsMismatchError
            If ``exact_k`` is given and differs from the table's semantics.
        """
        if engine is not None and engine != self.engine:
            raise EngineMismatchError(
                f"gather table was built by engine {self.engine!r}; "
                f"cannot reuse it as {engine!r} output"
            )
        if exact_k is not None and exact_k != self.exact_k:
            raise SemanticsMismatchError(
                f"gather table encodes exact_k={self.exact_k}; "
                f"reusing it with exact_k={exact_k} would trace the wrong "
                "dynamic program"
            )

    def effective_budget(self, budget: int | None = None) -> int:
        """Clamp ``budget`` to what the tables can answer (default: all of it)."""
        if budget is None:
            return self.budget
        if budget < 0:
            raise InvalidBudgetError(f"budget must be non-negative, got {budget}")
        return min(int(budget), self.budget)

    def cost(self, budget: int | None = None) -> float:
        """Optimal utilization ``X_r(1, budget)`` — a pure table lookup."""
        return self.result.cost_for_budget(self.effective_budget(budget))

    def cost_model(self) -> FlatCostModel | None:
        """The artifact's :class:`~repro.core.flat.FlatCostModel`, built lazily.

        ``None`` for a table bound to the reference cost kernel (the
        per-node walk needs no metadata).  Flat-engine tables derive the
        model zero-copy from their :class:`~repro.core.flat.FlatTables`;
        reference-engine tables pay one metadata pass.  Cached on the
        underlying :class:`~repro.core.gather.GatherResult`, so every
        budget of a sweep shares it.
        """
        if self.cost_kernel != FLAT_COST:
            return None
        if self.result.cost_model is None:
            self.result.cost_model = cost_model_for(self.tree, self.result.flat)
        return self.result.cost_model

    def place(self, budget: int | None = None, color: str | None = None) -> Placement:
        """Trace an optimal placement for ``budget`` out of the tables.

        This is the whole cost of answering a query from a cached table:
        the colour trace (batched by default) plus the verification
        recompute of the achieved cost (flat cost kernel by default).
        ``color`` overrides the table's default kernel (e.g.
        ``"reference"`` for differential runs).
        """
        effective = self.effective_budget(budget)
        blue = trace_color(
            self.tree, self.result, budget=effective, color=color or self.color
        )
        return Placement(
            blue_nodes=blue,
            cost=evaluate_cost(
                self.tree, blue, cost=self.cost_kernel, model=self.cost_model()
            ),
            predicted_cost=self.result.cost_for_budget(effective),
            budget=effective,
            table=self,
        )

    def sweep(
        self,
        budgets: Iterable[int],
        color: str | None = None,
    ) -> dict[int, Placement]:
        """Trace one placement per budget — the Figure 3/6 sweep surface.

        Budgets above :attr:`budget` are clamped (they share the widest
        column); duplicates after clamping are traced once and shared.
        """
        placements: dict[int, Placement] = {}
        by_effective: dict[int, Placement] = {}
        for budget in sorted({int(b) for b in budgets}):
            effective = self.effective_budget(budget)
            if effective not in by_effective:
                by_effective[effective] = self.place(effective, color=color)
            placements[budget] = by_effective[effective]
        return placements

    def repair(self, delta: Iterable[NodeId]) -> "GatherTable":
        """Delta-repair this table for an availability change.

        ``delta`` is the set of switches whose Λ-membership flips (added
        or removed — the symmetric difference between the table's Λ and
        the target Λ).  Returns a *new* table for the flipped availability
        whose DP tables, costs, and traced placements are bit-identical to
        a cold ``Solver.gather`` on the new network, computed in
        O(depth · k² · |delta|) instead of O(n · k²): only the columns of
        the delta switches and their ancestors are re-convolved
        (:func:`repro.core.engine.repair`).

        The repaired artifact records its lineage (:attr:`repaired_from`,
        :attr:`repair_generation`) and can itself be repaired again.

        Raises
        ------
        RepairError
            When the repair would be unsound — the table's engine has no
            registered repairer (``"reference"``), the result carries no
            flat tensors, or the delta changes the effective budget
            (|Λ| crossing the requested ``k`` changes the tensor width).
            Callers fall back to a cold gather.
        """
        flips = frozenset(delta)
        new_tree = self.tree.with_available(self.tree.available ^ flips)
        result = run_repair(self.result, new_tree, engine=self.engine)
        return GatherTable(
            result=result,
            tree=new_tree,
            engine=self.engine,
            exact_k=self.exact_k,
            color=self.color,
            fingerprint=new_tree.fingerprint(),
            cost_kernel=self.cost_kernel,
            repaired_from=self.fingerprint,
            repair_generation=self.repair_generation + 1,
        )


@dataclass(frozen=True)
class Solver:
    """Facade binding engine, budget semantics, and colour kernel once.

    Parameters
    ----------
    engine:
        Gather engine (``"flat"`` default, ``"reference"`` ground truth);
        see :mod:`repro.core.engine`.
    exact_k:
        Budget semantics; see :mod:`repro.core.gather`.  The default
        (at-most-k) is never worse than the paper-literal exactly-k mode.
    color:
        Colour kernel placements are traced with (``"batched"`` default,
        ``"reference"`` ground truth); see :mod:`repro.core.color`.
    cost_kernel:
        Cost kernel the achieved utilization is recomputed with
        (``"flat"`` default, ``"reference"`` ground truth); see
        :data:`repro.core.cost.COST_KERNELS`.

    The solver is stateless and immutable — share one per configuration.
    """

    engine: str = DEFAULT_ENGINE
    exact_k: bool = False
    color: str = DEFAULT_COLOR
    cost_kernel: str = DEFAULT_COST

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            known = ", ".join(sorted(ENGINES))
            raise ValueError(
                f"unknown gather engine {self.engine!r}; expected one of: {known}"
            )
        if self.color not in COLOR_KERNELS:
            known = ", ".join(sorted(COLOR_KERNELS))
            raise ValueError(
                f"unknown colour kernel {self.color!r}; expected one of: {known}"
            )
        if self.cost_kernel not in COST_KERNELS:
            known = ", ".join(sorted(COST_KERNELS))
            raise ValueError(
                f"unknown cost kernel {self.cost_kernel!r}; expected one of: {known}"
            )

    def with_semantics(self, exact_k: bool) -> "Solver":
        """A solver identical to this one except for the budget semantics."""
        return replace(self, exact_k=exact_k)

    # ------------------------------------------------------------------ #
    # the staged surface
    # ------------------------------------------------------------------ #

    def gather(self, tree: TreeNetwork, max_budget: int) -> GatherTable:
        """Run the gather phase and wrap the tables as a reusable artifact.

        When sweeping budgets ``1 .. k`` gather once at ``k``: the returned
        table answers every smaller budget through :meth:`GatherTable.cost`
        / :meth:`GatherTable.place` for the price of a colour trace.
        """
        result = run_gather(
            tree, max_budget, exact_k=self.exact_k, engine=self.engine
        )
        return GatherTable(
            result=result,
            tree=tree,
            engine=self.engine,
            exact_k=self.exact_k,
            color=self.color,
            fingerprint=tree.fingerprint(),
            cost_kernel=self.cost_kernel,
        )

    def solve(self, tree: TreeNetwork, budget: int) -> Placement:
        """Gather + place in one step (the cold-query path)."""
        normalize_budget(tree, budget)  # validate before paying the gather
        return self.gather(tree, budget).place()

    def sweep(self, tree: TreeNetwork, budgets: Iterable[int]) -> dict[int, Placement]:
        """Solve several budgets from a single gather at the largest one."""
        budget_list = sorted({int(b) for b in budgets})
        if not budget_list:
            return {}
        if budget_list[0] < 0:
            raise InvalidBudgetError("budgets must be non-negative")
        return self.gather(tree, budget_list[-1]).sweep(budget_list)

    def cost(self, tree: TreeNetwork, budget: int) -> float:
        """Optimal utilization for one budget (cold gather + trace)."""
        return self.solve(tree, budget).cost

    # ------------------------------------------------------------------ #
    # batch entry points
    # ------------------------------------------------------------------ #

    def solve_many(
        self,
        instances: Iterable[tuple[TreeNetwork, int]],
    ) -> list[Placement]:
        """Solve a batch of ``(tree, budget)`` instances, sharing gathers.

        Instances over the *same* tree object are grouped and gathered once
        at the largest budget of the group (the experiment- and
        service-scale fan-out path); distinct trees gather independently.
        """
        items: list[tuple[TreeNetwork, int]] = [
            (tree, int(budget)) for tree, budget in instances
        ]
        widest: dict[int, int] = {}
        for tree, budget in items:
            if budget < 0:
                raise InvalidBudgetError(f"budget must be non-negative, got {budget}")
            key = id(tree)
            widest[key] = max(widest.get(key, 0), budget)
        tables: dict[int, GatherTable] = {}
        placements: list[Placement] = []
        for tree, budget in items:
            key = id(tree)
            if key not in tables:
                tables[key] = self.gather(tree, widest[key])
            placements.append(tables[key].place(budget))
        return placements

    def sweep_many(
        self,
        instances: Iterable[tuple[TreeNetwork, Sequence[int]]],
    ) -> list[dict[int, Placement]]:
        """Run one budget sweep per instance, each from a single gather."""
        return [self.sweep(tree, budgets) for tree, budgets in instances]

"""Layering rule: the pure layers must not import the stateful ones.

The dependency direction of this codebase is one-way: ``repro.core`` and
``repro.topology`` are pure algorithm/data layers that everything else
builds on; ``repro.service`` (long-lived fleet state), ``repro.online``
(capacity tracking and scheduling), and ``repro.experiments`` (figure
harnesses) sit above them.  An import in the other direction compiles
fine and usually even works — until it creates an import cycle under a
different entry point, or quietly couples the differential-tested kernels
to mutable service state.  This rule pins the direction mechanically.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, Rule, SourceModule, register_rule

__all__ = ["LayeringRule"]

#: Layers whose modules may not import the layers in :data:`_FORBIDDEN`.
_PURE_LAYERS: tuple[str, ...] = ("repro.core", "repro.topology")

#: Upper layers the pure layers must stay ignorant of.
_FORBIDDEN: tuple[str, ...] = ("repro.service", "repro.online", "repro.experiments")


def _violates(target: str) -> bool:
    return any(
        target == layer or target.startswith(layer + ".") for layer in _FORBIDDEN
    )


@register_rule
class LayeringRule(Rule):
    """Flag upward imports out of ``repro.core`` / ``repro.topology``."""

    rule_id = "layering"
    description = (
        "repro.core / repro.topology must not import repro.service, "
        "repro.online, or repro.experiments"
    )

    def check_module(self, module: SourceModule) -> list[Finding]:
        if not module.module.startswith(_PURE_LAYERS):
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            targets: list[str] = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                targets = [node.module]
            for target in targets:
                if _violates(target):
                    findings.append(
                        module.finding(
                            self.rule_id,
                            node,
                            f"pure layer {module.module} imports {target}",
                            "invert the dependency: pass the needed values in, "
                            "or move the code up a layer",
                        )
                    )
        return findings

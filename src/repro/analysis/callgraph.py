"""Project-wide symbol table and call graph for the interprocedural rules.

The per-module rules see one file at a time, which is enough to check
*that* a mutation happens under a lock but not *which locks are held
together*, whether a blocking syscall is reachable inside a critical
section, or whether an exception can escape mid-mutation.  Those
properties need a whole-program view: this module builds it, once per
run, from the same parsed :class:`~repro.analysis.core.SourceModule`
objects the per-module rules consumed (the shared-AST pipeline — no file
is parsed twice).

The index is deliberately *syntactic and bounded* — it resolves the call
edges this codebase actually uses, rather than attempting full type
inference:

* ``self.method(...)`` and ``ClassName.method(...)`` — method lookup on
  the enclosing / named class;
* ``self._attr.method(...)`` and ``param.method(...)`` — through the
  per-class attribute-type table (``self._attr = ClassName(...)`` in any
  method, ``self._attr = param`` with an annotated parameter,
  ``self._attr: ClassName``) and through parameter / local annotations;
* ``local = self.method(...)`` — through method return annotations, so
  ``record = self.tenant(tid)`` types ``record`` as ``TenantRecord``;
* ``module.func(...)`` / ``func(...)`` — module-level functions, import
  aliases, and nested ``def``\\ s in the enclosing function;
* ``REGISTRY[name](...)`` — the kernel-registry dispatch idiom: a
  subscripted call on a module-level dict (``ENGINES``, ``REPAIRERS``,
  ``COLOR_KERNELS`` …) resolves to *every* registered callable, both
  dict-literal values and later ``REGISTRY[key] = fn`` registrations;
* a last-resort unique-method fallback: ``obj.method(...)`` with an
  untypable ``obj`` resolves iff exactly one class in the project
  defines ``method`` *and* the name is not a common container/stdlib
  method (``append``, ``get``, ``flush`` … would otherwise alias every
  ``list.append`` in the tree onto ``Journal.append``).

Unresolvable calls resolve to nothing — the rules built on top treat
"unknown callee" as "no effect", which keeps the analysis quiet instead
of noisy.  Context is bounded: resolution is context-insensitive and the
transitive passes in :mod:`repro.analysis.summaries` memoize per
function with a recursion guard.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.core import SourceModule

__all__ = [
    "COMMON_METHODS",
    "ClassInfo",
    "FunctionInfo",
    "ProjectIndex",
]

#: Method names excluded from the unique-name fallback: they collide with
#: builtin container / file / threading protocol methods, so a bare
#: ``x.append(...)`` must never resolve to a project class's method of
#: the same name unless ``x`` itself was typed.
COMMON_METHODS: frozenset[str] = frozenset(
    {
        "acquire", "add", "append", "clear", "close", "copy", "count",
        "decode", "discard", "encode", "extend", "flush", "format", "get",
        "index", "insert", "items", "join", "keys", "move_to_end",
        "notify", "notify_all", "open", "pop", "popitem", "put", "read",
        "release", "remove", "reverse", "setdefault", "sort", "split",
        "strip", "submit", "update", "values", "wait", "write",
    }
)

#: Lock-constructor callables recognized when classifying lock slots.
_LOCK_CONSTRUCTORS: dict[str, str] = {
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
    "Semaphore": "lock",
    "BoundedSemaphore": "lock",
    "ReadWriteLock": "rwlock",
}


def _callable_name(expr: ast.expr) -> str:
    """Rightmost identifier of a call target (``threading.RLock`` -> ``RLock``)."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return ""


def _annotation_classes(annotation: ast.expr | None, known: set[str]) -> str | None:
    """The single known class an annotation names, or ``None``.

    Handles plain names, ``"Quoted | None"`` string annotations, and
    ``Optional[X]`` — anything where exactly one known class name occurs
    in the unparsed text.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    text = ast.unparse(annotation)
    names = set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", text))
    matches = names & known
    if len(matches) == 1:
        return next(iter(matches))
    return None


@dataclass
class FunctionInfo:
    """One function or method as the call graph sees it."""

    qualname: str
    name: str
    module: SourceModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None
    #: Nested ``def``\ s, resolvable by bare name from inside this function.
    locals_: dict[str, "FunctionInfo"] = field(default_factory=dict)

    @property
    def is_property(self) -> bool:
        return any(
            _callable_name(decorator) == "property"
            for decorator in self.node.decorator_list
        )


@dataclass
class ClassInfo:
    """One class: its methods, inferred attribute types, and lock slots."""

    name: str
    qualname: str
    module: SourceModule
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` -> class name, inferred from constructor calls,
    #: annotated assignments, and annotated-parameter aliasing.
    attr_types: dict[str, str] = field(default_factory=dict)
    #: ``self.<attr>`` -> lock kind ("lock" / "rlock" / "condition" /
    #: "rwlock") for attrs assigned a recognized lock constructor.
    lock_kinds: dict[str, str] = field(default_factory=dict)


class ProjectIndex:
    """Symbol table + call graph over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: dict[str, SourceModule] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: bare function name -> candidates (module-level functions).
        self._functions_by_name: dict[str, list[FunctionInfo]] = {}
        #: bare method name -> candidates across every class.
        self._methods_by_name: dict[str, list[FunctionInfo]] = {}
        #: per module: local alias -> dotted target ("eng" -> "repro.core.engine",
        #: "soar_gather" -> "repro.core.gather.soar_gather").
        self._imports: dict[str, dict[str, str]] = {}
        #: registry dicts: "<module>.<NAME>" -> registered callables.
        self._registries: dict[str, list[FunctionInfo]] = {}
        #: per module: NAME -> "<module>.<NAME>" for locally defined or
        #: imported registry dicts.
        self._registry_aliases: dict[str, dict[str, str]] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(cls, modules: list[SourceModule]) -> "ProjectIndex":
        index = cls()
        for module in modules:
            index.modules[module.module] = module
        for module in modules:
            index._index_module(module)
        known = set(index.classes)
        for module in modules:
            index._index_registries(module)
        for info in index.classes.values():
            index._infer_attr_types(info, known)
        return index

    def _register_function(self, info: FunctionInfo) -> None:
        self.functions[info.qualname] = info
        if info.class_name is None:
            self._functions_by_name.setdefault(info.name, []).append(info)
        else:
            self._methods_by_name.setdefault(info.name, []).append(info)
        for child in ast.iter_child_nodes(info.node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = FunctionInfo(
                    qualname=f"{info.qualname}.{child.name}",
                    name=child.name,
                    module=info.module,
                    node=child,
                    class_name=info.class_name,
                )
                info.locals_[child.name] = nested
                self.functions[nested.qualname] = nested
                self._register_nested(nested)

    def _register_nested(self, info: FunctionInfo) -> None:
        for child in ast.iter_child_nodes(info.node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = FunctionInfo(
                    qualname=f"{info.qualname}.{child.name}",
                    name=child.name,
                    module=info.module,
                    node=child,
                    class_name=info.class_name,
                )
                info.locals_[child.name] = nested
                self.functions[nested.qualname] = nested
                self._register_nested(nested)

    def _index_module(self, module: SourceModule) -> None:
        aliases: dict[str, str] = {}
        self._imports[module.module] = aliases
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    aliases[name.asname or name.name.split(".")[0]] = (
                        name.name if name.asname else name.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for name in node.names:
                    if name.name != "*":
                        aliases[name.asname or name.name] = (
                            f"{node.module}.{name.name}"
                        )
        for node in ast.iter_child_nodes(module.tree):
            if isinstance(node, ast.ClassDef):
                info = ClassInfo(
                    name=node.name,
                    qualname=f"{module.module}.{node.name}",
                    module=module,
                    node=node,
                )
                # First definition of a class name wins project-wide;
                # the codebase keeps class names unique.
                self.classes.setdefault(node.name, info)
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method = FunctionInfo(
                            qualname=f"{info.qualname}.{child.name}",
                            name=child.name,
                            module=module,
                            node=child,
                            class_name=node.name,
                        )
                        info.methods[child.name] = method
                        self._register_function(method)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_function(
                    FunctionInfo(
                        qualname=f"{module.module}.{node.name}",
                        name=node.name,
                        module=module,
                        node=node,
                    )
                )

    def _index_registries(self, module: SourceModule) -> None:
        aliases = self._imports.get(module.module, {})
        local: dict[str, str] = {}
        self._registry_aliases[module.module] = local
        for node in ast.iter_child_nodes(module.tree):
            # NAME = {"key": callable, ...} at module level.
            if (
                isinstance(node, (ast.Assign, ast.AnnAssign))
                and isinstance(getattr(node, "value", None), ast.Dict)
            ):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    key = f"{module.module}.{target.id}"
                    local[target.id] = key
                    bucket = self._registries.setdefault(key, [])
                    assert isinstance(node.value, ast.Dict)
                    for value in node.value.values:
                        fn = self._resolve_value_callable(value, module)
                        if fn is not None:
                            bucket.append(fn)
            # REGISTRY[key] = callable at module level (self-registration).
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                    ):
                        key = self._registry_key(target.value.id, module)
                        if key is None:
                            key = f"{module.module}.{target.value.id}"
                            local.setdefault(target.value.id, key)
                        fn = self._resolve_value_callable(node.value, module)
                        if fn is not None:
                            self._registries.setdefault(key, []).append(fn)
        # Imported registry names alias the defining module's dict.
        for alias, dotted in aliases.items():
            if dotted in self._registries or any(
                dotted == key for key in self._registries
            ):
                local.setdefault(alias, dotted)
            else:
                # "from repro.core.engine import ENGINES" resolves even when
                # the engine module is indexed after this one.
                if alias.isupper() and "." in dotted:
                    local.setdefault(alias, dotted)

    def _registry_key(self, name: str, module: SourceModule) -> str | None:
        local = self._registry_aliases.get(module.module, {})
        if name in local:
            return local[name]
        dotted = self._imports.get(module.module, {}).get(name)
        if dotted is not None:
            return dotted
        return None

    def _resolve_value_callable(
        self, value: ast.expr, module: SourceModule
    ) -> FunctionInfo | None:
        name = _callable_name(value) if not isinstance(value, ast.Call) else ""
        if not name:
            return None
        return self._resolve_bare_name(name, module)

    def _resolve_bare_name(
        self, name: str, module: SourceModule
    ) -> FunctionInfo | None:
        qual = f"{module.module}.{name}"
        if qual in self.functions:
            return self.functions[qual]
        dotted = self._imports.get(module.module, {}).get(name)
        if dotted is not None and dotted in self.functions:
            return self.functions[dotted]
        return None

    def _infer_attr_types(self, info: ClassInfo, known: set[str]) -> None:
        for method in info.methods.values():
            params: dict[str, str] = {}
            args = method.node.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                cls = _annotation_classes(arg.annotation, known)
                if cls is not None:
                    params[arg.arg] = cls
            for stmt in ast.walk(method.node):
                target: ast.expr | None = None
                value: ast.expr | None = None
                annotation: ast.expr | None = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value, annotation = stmt.target, stmt.value, stmt.annotation
                else:
                    continue
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
                cls = _annotation_classes(annotation, known)
                if cls is None and isinstance(value, ast.Call):
                    callee = _callable_name(value.func)
                    if callee in known:
                        cls = callee
                    kind = _LOCK_CONSTRUCTORS.get(callee)
                    if kind is not None:
                        info.lock_kinds.setdefault(attr, kind)
                        if callee in known:
                            info.attr_types.setdefault(attr, callee)
                        continue
                if cls is None and isinstance(value, ast.Name):
                    cls = params.get(value.id)
                if cls is not None:
                    info.attr_types.setdefault(attr, cls)
                    if cls in _LOCK_CONSTRUCTORS:
                        info.lock_kinds.setdefault(attr, _LOCK_CONSTRUCTORS[cls])

    # ------------------------------------------------------------------ #
    # type queries
    # ------------------------------------------------------------------ #

    def class_of_attr(self, class_name: str | None, attr: str) -> str | None:
        """The inferred class of ``self.<attr>`` inside ``class_name``."""
        if class_name is None:
            return None
        info = self.classes.get(class_name)
        if info is None:
            return None
        return info.attr_types.get(attr)

    def lock_kind(self, class_name: str | None, attr: str) -> str | None:
        """The lock kind of ``self.<attr>`` if it holds a lock constructor."""
        if class_name is None:
            return None
        info = self.classes.get(class_name)
        if info is None:
            return None
        return info.lock_kinds.get(attr)

    def _local_types(self, context: FunctionInfo) -> dict[str, str]:
        """Parameter/local name -> class name, within ``context``."""
        memo = getattr(self, "_local_types_memo", None)
        if memo is None:
            memo = {}
            self._local_types_memo = memo
        cached = memo.get(context.qualname)
        if cached is not None:
            return cached
        known = set(self.classes)
        types: dict[str, str] = {}
        # Publish the (partial) dict up front: the return-annotation
        # resolution below re-enters resolve_call/infer_class, which must
        # not recompute local types for this same context (recursion).
        memo[context.qualname] = types
        args = context.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            cls = _annotation_classes(arg.annotation, known)
            if cls is not None:
                types[arg.arg] = cls
        for stmt in ast.walk(context.node):
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                cls = _annotation_classes(stmt.annotation, known)
                if cls is not None:
                    types[stmt.target.id] = cls
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                value = stmt.value
                if isinstance(value, ast.Call):
                    callee = _callable_name(value.func)
                    if callee in known:
                        types.setdefault(target.id, callee)
                        continue
                    # local = self.method(...): use the return annotation.
                    resolved = self.resolve_call(value, context, types)
                    if len(resolved) == 1:
                        cls = _annotation_classes(resolved[0].node.returns, known)
                        if cls is not None:
                            types.setdefault(target.id, cls)
        return types

    def infer_class(
        self,
        expr: ast.expr,
        context: FunctionInfo,
        local_types: dict[str, str] | None = None,
    ) -> str | None:
        """The class an expression evaluates to, if statically evident."""
        if local_types is None:
            local_types = self._local_types(context)
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return context.class_name
            if expr.id in local_types:
                return local_types[expr.id]
            if expr.id in self.classes:
                # A bare class name is the class object itself; method
                # resolution handles that case separately.
                return None
            return None
        if isinstance(expr, ast.Attribute):
            base = self.infer_class(expr.value, context, local_types)
            if base is None:
                return None
            direct = self.class_of_attr(base, expr.attr)
            if direct is not None:
                return direct
            # Property view of a typed slot (FleetState.tracker -> _tracker).
            info = self.classes.get(base)
            if info is not None:
                method = info.methods.get(expr.attr)
                if method is not None and method.is_property:
                    return _annotation_classes(method.node.returns, set(self.classes))
            return None
        if isinstance(expr, ast.Call):
            callee = _callable_name(expr.func)
            if callee in self.classes:
                return callee
            resolved = self.resolve_call(expr, context)
            if len(resolved) == 1:
                return _annotation_classes(resolved[0].node.returns, set(self.classes))
            return None
        return None

    # ------------------------------------------------------------------ #
    # call resolution
    # ------------------------------------------------------------------ #

    def resolve_call(
        self,
        call: ast.Call,
        context: FunctionInfo,
        local_types: dict[str, str] | None = None,
    ) -> list[FunctionInfo]:
        """The project functions a call site may invoke (empty if unknown)."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in context.locals_:
                return [context.locals_[name]]
            if name in self.classes:
                init = self.classes[name].methods.get("__init__")
                return [init] if init is not None else []
            resolved = self._resolve_bare_name(name, context.module)
            return [resolved] if resolved is not None else []
        if isinstance(func, ast.Attribute):
            attr = func.attr
            base = func.value
            # REGISTRY[name](...) dispatch: base of the attribute chain is
            # handled below; the direct form is func.value being Subscript.
            if isinstance(base, ast.Name) and base.id in self.classes:
                method = self.classes[base.id].methods.get(attr)
                return [method] if method is not None else []
            base_cls = self.infer_class(base, context, local_types)
            if base_cls is not None:
                info = self.classes.get(base_cls)
                if info is not None:
                    method = info.methods.get(attr)
                    return [method] if method is not None else []
                return []
            if isinstance(base, ast.Name):
                dotted = self._imports.get(context.module.module, {}).get(base.id)
                if dotted is not None:
                    qual = f"{dotted}.{attr}"
                    if qual in self.functions:
                        return [self.functions[qual]]
            # Unique-method fallback, gated on distinctive names.
            if attr not in COMMON_METHODS and not attr.startswith("__"):
                candidates = self._methods_by_name.get(attr, [])
                if len(candidates) == 1:
                    return [candidates[0]]
            return []
        if isinstance(func, ast.Subscript) and isinstance(func.value, ast.Name):
            key = self._registry_key(func.value.id, context.module)
            if key is not None and key in self._registries:
                return list(self._registries[key])
            return []
        return []

"""Registry-coherence rule: the three kernel registries stay in lockstep.

A solve is a pipeline of three registry lookups — gather engine
(:data:`repro.core.engine.ENGINES`), colour kernel
(:data:`repro.core.color.COLOR_KERNELS`), cost kernel
(:data:`repro.core.cost.COST_KERNELS`) — and the service wires one name
through all three.  An engine registered without a matching colour/cost
entry (or vice versa) is a latent ``KeyError`` that only fires when a
user passes that configuration, long after the registering PR merged.

This rule *imports* the registries and cross-diffs them: every name in
``ENGINES`` must resolve in ``COLOR_KERNELS`` and ``COST_KERNELS`` —
either directly, or through the explicit fallback declarations
(:data:`repro.core.color.ENGINE_COLOR_FALLBACKS` /
:data:`repro.core.cost.ENGINE_COST_FALLBACKS`, e.g. the ``"flat"``
engine tracing with the ``"batched"`` colour kernel).  The defaults
(``DEFAULT_ENGINE`` / ``DEFAULT_COLOR`` / ``DEFAULT_COST``) must resolve
in their own registries, and fallback declarations must map known
engines to known kernels.  Because the check imports the real modules,
it validates whichever leg it runs on — compiled backend present or
``REPRO_NO_COMPILED=1`` — which is exactly why CI runs it on both.
"""

from __future__ import annotations

from collections.abc import Mapping
from pathlib import Path

from repro.analysis.core import Finding, Rule, register_rule

__all__ = ["RegistryCoherenceRule", "check_registries"]


def check_registries(
    engines: Mapping[str, object],
    color_kernels: Mapping[str, object],
    cost_kernels: Mapping[str, object],
    color_fallbacks: Mapping[str, str],
    cost_fallbacks: Mapping[str, str],
    defaults: Mapping[str, str] | None = None,
    path: str = "src/repro/core",
) -> list[Finding]:
    """Cross-diff the registries; pure so fixtures can exercise it."""
    findings: list[Finding] = []

    def finding(message: str, hint: str) -> Finding:
        return Finding(
            rule=RegistryCoherenceRule.rule_id,
            path=path,
            line=1,
            message=message,
            hint=hint,
            snippet=message,
        )

    def resolve(
        engine: str, kernels: Mapping[str, object], fallbacks: Mapping[str, str]
    ) -> str | None:
        if engine in kernels:
            return engine
        target = fallbacks.get(engine)
        if target is not None and target in kernels:
            return target
        return None

    for engine in sorted(engines):
        if resolve(engine, color_kernels, color_fallbacks) is None:
            findings.append(
                finding(
                    f"engine {engine!r} has no colour kernel: not in "
                    f"COLOR_KERNELS {sorted(color_kernels)} and no fallback",
                    "register a colour kernel under the engine's name or add "
                    "an ENGINE_COLOR_FALLBACKS entry",
                )
            )
        if resolve(engine, cost_kernels, cost_fallbacks) is None:
            findings.append(
                finding(
                    f"engine {engine!r} has no cost kernel: not in "
                    f"COST_KERNELS {sorted(cost_kernels)} and no fallback",
                    "register a cost kernel under the engine's name or add "
                    "an ENGINE_COST_FALLBACKS entry",
                )
            )
    for name, fallbacks, kernels in (
        ("ENGINE_COLOR_FALLBACKS", color_fallbacks, color_kernels),
        ("ENGINE_COST_FALLBACKS", cost_fallbacks, cost_kernels),
    ):
        for engine, target in sorted(fallbacks.items()):
            if engine not in engines:
                findings.append(
                    finding(
                        f"{name} maps unknown engine {engine!r}",
                        "fallback keys must be registered engine names",
                    )
                )
            if target not in kernels:
                findings.append(
                    finding(
                        f"{name} maps {engine!r} to unknown kernel {target!r}",
                        "fallback targets must be registered kernel names",
                    )
                )
    if defaults:
        for label, (value, kernels) in {
            "DEFAULT_ENGINE": (defaults.get("engine"), engines),
            "DEFAULT_COLOR": (defaults.get("color"), color_kernels),
            "DEFAULT_COST": (defaults.get("cost"), cost_kernels),
        }.items():
            if value is not None and value not in kernels:
                findings.append(
                    finding(
                        f"{label} = {value!r} is not a registered name",
                        "point the default at a registered entry",
                    )
                )
    return findings


@register_rule
class RegistryCoherenceRule(Rule):
    """Import the live registries and cross-diff them."""

    rule_id = "registry-coherence"
    description = (
        "every ENGINES name must resolve in COLOR_KERNELS and COST_KERNELS "
        "(directly or via a declared fallback); defaults must resolve"
    )

    def check_project(self, root: Path) -> list[Finding]:
        from repro.core.color import (
            COLOR_KERNELS,
            DEFAULT_COLOR,
            ENGINE_COLOR_FALLBACKS,
        )
        from repro.core.cost import COST_KERNELS, DEFAULT_COST, ENGINE_COST_FALLBACKS
        from repro.core.engine import DEFAULT_ENGINE, ENGINES

        return check_registries(
            ENGINES,
            COLOR_KERNELS,
            COST_KERNELS,
            ENGINE_COLOR_FALLBACKS,
            ENGINE_COST_FALLBACKS,
            defaults={
                "engine": DEFAULT_ENGINE,
                "color": DEFAULT_COLOR,
                "cost": DEFAULT_COST,
            },
            path="src/repro/core/engine.py",
        )

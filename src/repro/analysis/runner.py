"""The lint runner: discover sources, run rules, diff against the baseline.

``soar-repro lint`` and ``python -m repro.analysis`` both land here.
The runner walks ``src/`` (or explicit paths), runs every registered
per-module rule over each parsed file, runs the project-wide rules
(registry coherence, FFI contracts) once, filters ``# lint:
allow(rule-id)`` pragmas, and diffs the surviving findings against the
committed baseline (:mod:`repro.analysis.baseline`).

Exit codes: ``0`` — no findings outside the baseline; ``1`` — new
findings (always), or a stale baseline entry under ``--strict``; ``2`` —
a source file failed to parse.  CI runs ``--strict`` on both the
compiled and ``REPRO_NO_COMPILED=1`` legs, so the import-based registry
check covers whichever backend the leg exercises.
"""

from __future__ import annotations

import argparse
from pathlib import Path

# Importing the rule modules populates the registry (self-registration,
# like the engine/colour/cost kernel registries).
import repro.analysis.rules_determinism  # noqa: F401  (registration)
import repro.analysis.rules_excepts  # noqa: F401  (registration)
import repro.analysis.rules_ffi  # noqa: F401  (registration)
import repro.analysis.rules_layering  # noqa: F401  (registration)
import repro.analysis.rules_locks  # noqa: F401  (registration)
import repro.analysis.rules_registry  # noqa: F401  (registration)
from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    split_findings,
    write_baseline,
)
from repro.analysis.core import RULES, Finding, lint_source

__all__ = ["find_project_root", "iter_source_files", "lint_project", "main"]


def find_project_root(start: Path | None = None) -> Path:
    """The repo root: the nearest ancestor holding ``src/repro``."""
    probe = (start or Path.cwd()).resolve()
    for candidate in [probe, *probe.parents]:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    # Fall back to the package's own location (installed-from-src layout).
    package = Path(__file__).resolve()
    for candidate in package.parents:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return probe


def iter_source_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into the ``.py`` files to lint, sorted."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def lint_project(
    root: Path,
    paths: list[Path] | None = None,
    rule_ids: list[str] | None = None,
    project_rules: bool = True,
) -> tuple[list[Finding], list[str]]:
    """Run the pass; returns (findings, parse-error messages).

    ``paths`` defaults to ``<root>/src``; ``rule_ids`` restricts the pass
    to a subset of :data:`repro.analysis.core.RULES`.  Project-wide rules
    run once per invocation (they are skipped when an explicit ``paths``
    selection is combined with ``project_rules=False``).
    """
    if rule_ids is not None:
        unknown = sorted(set(rule_ids) - set(RULES))
        if unknown:
            raise ValueError(f"unknown rule ids: {unknown} (known: {sorted(RULES)})")
        rules = [RULES[rule_id] for rule_id in rule_ids]
    else:
        rules = list(RULES.values())
    targets = iter_source_files(paths if paths is not None else [root / "src"])
    findings: list[Finding] = []
    errors: list[str] = []
    for path in targets:
        try:
            findings.extend(lint_source(path, rules=rules))
        except SyntaxError as exc:
            errors.append(f"{path}: failed to parse: {exc}")
    if project_rules:
        for rule in rules:
            findings.extend(rule.check_project(root))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, errors


def _relativize(findings: list[Finding], root: Path) -> list[Finding]:
    """Rewrite absolute paths repo-relative so baselines are portable."""
    rewritten: list[Finding] = []
    for finding in findings:
        try:
            rel = Path(finding.path).resolve().relative_to(root.resolve())
            rewritten.append(
                Finding(
                    rule=finding.rule,
                    path=rel.as_posix(),
                    line=finding.line,
                    message=finding.message,
                    hint=finding.hint,
                    snippet=finding.snippet,
                )
            )
        except ValueError:
            rewritten.append(finding)
    return rewritten


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="soar-repro lint",
        description="Codebase-specific static analysis: lock discipline, "
        "determinism, registry coherence, layering, FFI contracts, "
        "typed-exception discipline.",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail on stale baseline entries (CI mode)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: <repo>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="accept the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--rule", action="append", dest="rules", metavar="RULE-ID",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id:20s} {RULES[rule_id].description}")
        return 0
    root = find_project_root()
    baseline_path = args.baseline or root / DEFAULT_BASELINE
    try:
        findings, errors = lint_project(
            root,
            paths=args.paths or None,
            rule_ids=args.rules,
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    findings = _relativize(findings, root)
    for message in errors:
        print(f"error: {message}")
    if args.update_baseline:
        path = write_baseline(findings, baseline_path)
        print(f"wrote {len(findings)} finding(s) to {path}")
        return 0
    baseline = load_baseline(baseline_path)
    new, known, stale = split_findings(findings, baseline)
    for finding in new:
        print(finding.format())
    if known:
        print(f"({len(known)} baselined finding(s) suppressed)")
    if stale:
        print(
            f"note: {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} no longer fire"
            + (" (failing: --strict)" if args.strict else "")
        )
        for rule, path, snippet in sorted(stale):
            print(f"  stale: [{rule}] {path}: {snippet}")
    if errors:
        return 2
    if new:
        print(f"{len(new)} new finding(s) — fix them or update the baseline")
        return 1
    if args.strict and stale:
        return 1
    checked = "all rules" if not args.rules else ", ".join(sorted(args.rules))
    print(f"lint clean ({checked})")
    return 0

"""The lint runner: discover sources, run rules, diff against the baseline.

``soar-repro lint`` and ``python -m repro.analysis`` both land here.
The runner parses every target file **once** into a shared
:class:`~repro.analysis.core.SourceModule` pool, runs the per-module
rules over the pool, runs the project-wide rules (registry coherence,
FFI contracts) once, builds the
:class:`~repro.analysis.callgraph.ProjectIndex` from the *same* parsed
trees and runs the interprocedural rules (lock-order,
blocking-under-lock, atomicity) over it, then filters ``# lint:
allow(rule-id)`` pragmas against full statement-header spans and diffs
the survivors against the committed baseline
(:mod:`repro.analysis.baseline`).  ``--jobs N`` fans the per-module
phase out across worker processes (each worker parses and filters its
own files; the parent still parses each file exactly once for the
interprocedural phase).  ``--timing`` prints per-phase wall-clock;
``--format github|sarif`` switches the findings report to workflow
commands / SARIF 2.1.0; ``--lock-graph-dot PATH`` writes the global
lock-acquisition graph as a Graphviz artifact.

Exit codes: ``0`` — no findings outside the baseline; ``1`` — new
findings (always), or a stale baseline entry under ``--strict``; ``2`` —
a source file failed to parse.  CI runs ``--strict`` on both the
compiled and ``REPRO_NO_COMPILED=1`` legs, so the import-based registry
check covers whichever backend the leg exercises.
"""

from __future__ import annotations

import argparse
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

# Importing the rule modules populates the registry (self-registration,
# like the engine/colour/cost kernel registries).
import repro.analysis.rules_atomicity  # noqa: F401  (registration)
import repro.analysis.rules_blocking  # noqa: F401  (registration)
import repro.analysis.rules_determinism  # noqa: F401  (registration)
import repro.analysis.rules_excepts  # noqa: F401  (registration)
import repro.analysis.rules_ffi  # noqa: F401  (registration)
import repro.analysis.rules_layering  # noqa: F401  (registration)
import repro.analysis.rules_lockorder  # noqa: F401  (registration)
import repro.analysis.rules_locks  # noqa: F401  (registration)
import repro.analysis.rules_registry  # noqa: F401  (registration)
from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    split_findings,
    write_baseline,
)
from repro.analysis.callgraph import ProjectIndex
from repro.analysis.core import (
    RULES,
    Finding,
    Rule,
    SourceModule,
    filter_suppressed,
)
from repro.analysis.formats import FORMATS, render_findings

__all__ = [
    "find_project_root",
    "iter_source_files",
    "lint_project",
    "main",
]


def find_project_root(start: Path | None = None) -> Path:
    """The repo root: the nearest ancestor holding ``src/repro``."""
    probe = (start or Path.cwd()).resolve()
    for candidate in [probe, *probe.parents]:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    # Fall back to the package's own location (installed-from-src layout).
    package = Path(__file__).resolve()
    for candidate in package.parents:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return probe


def iter_source_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into the ``.py`` files to lint, sorted."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def _select_rules(rule_ids: list[str] | None) -> list[Rule]:
    if rule_ids is None:
        return list(RULES.values())
    unknown = sorted(set(rule_ids) - set(RULES))
    if unknown:
        raise ValueError(f"unknown rule ids: {unknown} (known: {sorted(RULES)})")
    return [RULES[rule_id] for rule_id in rule_ids]


def _lint_one_worker(path: str, rule_ids: list[str] | None) -> tuple[list, str | None]:
    """``--jobs`` worker: per-module rules for one file, pragmas filtered.

    Runs in a separate process (module state re-imported there), so the
    parent's :data:`~repro.analysis.core.PARSE_COUNTS` stays at one parse
    per file — the worker's parse happens in its own interpreter.
    """
    try:
        rules = _select_rules(rule_ids)
        parsed = SourceModule.parse(path)
        findings: list[Finding] = []
        for rule in rules:
            findings.extend(rule.check_module(parsed))
        return filter_suppressed(parsed, findings), None
    except SyntaxError as exc:
        return [], f"{path}: failed to parse: {exc}"


def lint_project(
    root: Path,
    paths: list[Path] | None = None,
    rule_ids: list[str] | None = None,
    project_rules: bool = True,
    jobs: int = 1,
    timings: dict[str, float] | None = None,
    dot_path: Path | None = None,
) -> tuple[list[Finding], list[str]]:
    """Run the full pass; returns (findings, parse-error messages).

    ``paths`` defaults to ``<root>/src``; ``rule_ids`` restricts the pass
    to a subset of :data:`repro.analysis.core.RULES`.  Project-wide and
    interprocedural rules run once per invocation.  ``jobs > 1`` fans the
    per-module phase across processes.  ``timings`` (if given) is filled
    with per-phase wall-clock seconds.  ``dot_path`` writes the
    lock-order graph DOT artifact.
    """
    rules = _select_rules(rule_ids)
    targets = iter_source_files(paths if paths is not None else [root / "src"])
    findings: list[Finding] = []
    errors: list[str] = []
    modules: list[SourceModule] = []
    by_path: dict[str, SourceModule] = {}

    tick = time.perf_counter()
    for path in targets:
        try:
            parsed = SourceModule.parse(path)
        except SyntaxError as exc:
            errors.append(f"{path}: failed to parse: {exc}")
            continue
        modules.append(parsed)
        by_path[parsed.path] = parsed
    if timings is not None:
        timings["parse"] = time.perf_counter() - tick

    tick = time.perf_counter()
    module_findings: list[Finding] = []
    if jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(
                pool.map(
                    _lint_one_worker,
                    [parsed.path for parsed in modules],
                    [rule_ids] * len(modules),
                )
            )
        for worker_findings, error in results:
            module_findings.extend(worker_findings)
            if error is not None:
                errors.append(error)
    else:
        for parsed in modules:
            per_module: list[Finding] = []
            for rule in rules:
                per_module.extend(rule.check_module(parsed))
            module_findings.extend(filter_suppressed(parsed, per_module))
    findings.extend(module_findings)
    if timings is not None:
        timings["module-rules"] = time.perf_counter() - tick

    tick = time.perf_counter()
    project_findings: list[Finding] = []
    if project_rules:
        for rule in rules:
            project_findings.extend(rule.check_project(root))
    if timings is not None:
        timings["project-rules"] = time.perf_counter() - tick

    tick = time.perf_counter()
    project = ProjectIndex.build(modules)
    inter_findings: list[Finding] = []
    for rule in rules:
        inter_findings.extend(rule.check_interprocedural(project))
    if dot_path is not None:
        from repro.analysis.rules_lockorder import lock_graph_dot

        dot_path.parent.mkdir(parents=True, exist_ok=True)
        dot_path.write_text(lock_graph_dot(project, root=root))
    if timings is not None:
        timings["interprocedural"] = time.perf_counter() - tick

    # Project-wide and interprocedural findings anchor into specific
    # modules too: filter their pragmas here, per anchored file (per-
    # module findings were already filtered above).
    late = project_findings + inter_findings
    grouped: dict[str, list[Finding]] = {}
    for finding in late:
        grouped.setdefault(finding.path, []).append(finding)
    for path_key, group in grouped.items():
        module = by_path.get(path_key)
        if module is not None:
            findings.extend(filter_suppressed(module, group))
        else:
            findings.extend(group)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, errors


def _relativize(findings: list[Finding], root: Path) -> list[Finding]:
    """Rewrite absolute paths repo-relative so baselines are portable."""
    rewritten: list[Finding] = []
    for finding in findings:
        try:
            rel = Path(finding.path).resolve().relative_to(root.resolve())
            rewritten.append(
                Finding(
                    rule=finding.rule,
                    path=rel.as_posix(),
                    line=finding.line,
                    message=finding.message,
                    hint=finding.hint,
                    snippet=finding.snippet,
                    end_line=finding.end_line,
                )
            )
        except ValueError:
            rewritten.append(finding)
    return rewritten


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="soar-repro lint",
        description="Codebase-specific static analysis: lock discipline, "
        "determinism, registry coherence, layering, FFI contracts, "
        "typed-exception discipline, lock-order/deadlock, blocking-under-"
        "lock, and atomicity analysis.",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail on stale baseline entries (CI mode)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: <repo>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="accept the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--rule", action="append", dest="rules", metavar="RULE-ID",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan per-module rule execution out across N processes",
    )
    parser.add_argument(
        "--timing", action="store_true",
        help="print per-phase wall-clock timings",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text", dest="fmt",
        help="findings output format (default: text)",
    )
    parser.add_argument(
        "--lock-graph-dot", type=Path, default=None, metavar="PATH",
        help="write the lock-acquisition graph as Graphviz DOT",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id:20s} {RULES[rule_id].description}")
        return 0
    root = find_project_root()
    baseline_path = args.baseline or root / DEFAULT_BASELINE
    timings: dict[str, float] = {}
    try:
        findings, errors = lint_project(
            root,
            paths=args.paths or None,
            rule_ids=args.rules,
            jobs=max(1, args.jobs),
            timings=timings,
            dot_path=args.lock_graph_dot,
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    findings = _relativize(findings, root)
    for message in errors:
        print(f"error: {message}")
    if args.update_baseline:
        path = write_baseline(findings, baseline_path)
        print(f"wrote {len(findings)} finding(s) to {path}")
        return 0
    baseline = load_baseline(baseline_path)
    new, known, stale = split_findings(findings, baseline)
    if args.fmt == "sarif":
        # Machine-readable: stdout is the document, nothing else.
        print(render_findings(new, "sarif"))
    else:
        if new:
            print(render_findings(new, args.fmt))
        if known:
            print(f"({len(known)} baselined finding(s) suppressed)")
        if stale:
            print(
                f"note: {len(stale)} stale baseline entr"
                f"{'y' if len(stale) == 1 else 'ies'} no longer fire"
                + (" (failing: --strict)" if args.strict else "")
            )
            for rule, path, snippet in sorted(stale):
                print(f"  stale: [{rule}] {path}: {snippet}")
    if args.timing:
        total = sum(timings.values())
        for phase in ("parse", "module-rules", "project-rules", "interprocedural"):
            if phase in timings:
                print(f"timing: {phase} {timings[phase]:.3f}s")
        print(f"timing: total {total:.3f}s")
    if errors:
        return 2
    if new:
        if args.fmt != "sarif":
            print(f"{len(new)} new finding(s) — fix them or update the baseline")
        return 1
    if args.strict and stale:
        return 1
    if args.fmt != "sarif":
        checked = "all rules" if not args.rules else ", ".join(sorted(args.rules))
        print(f"lint clean ({checked})")
    return 0

"""Atomicity rule: no raise-capable call between related field mutations.

The static cousin of the PR 5 ``note_forced_release`` bug: a method of a
shared mutable class updates field A, then calls something that can
raise, then updates field B — an exception at the call leaves the object
with A new and B old, and the writer lock does nothing about it (the
lock serializes threads; it does not roll back half-applied state).

The rule analyzes every method of the protected classes
(:data:`TARGET_CLASSES` — ``FleetState``, ``CapacityTracker``,
``GatherTableCache``, ``CacheStats``) with a small sequence machine over
each statement block:

* a **mutation** is an assign / aug-assign / delete whose target chain
  is rooted at ``self`` (``self._x = …``, ``self._counts[k] += 1``,
  ``del self._tenants[t]``);
* a **raise-capable call** is one whose resolved callee (via the project
  call graph) contains a ``raise`` anywhere, directly or transitively —
  a *direct* ``raise`` in the method itself is a guard, not a finding;
* the pattern **mutation → raise-capable call → mutation** inside one
  block fires, anchored at the call (within a single statement, value
  expressions evaluate before the target store, so
  ``self._b = self._risky()`` after ``self._a = …`` fires too);
* a **loop** whose body both mutates ``self`` and makes a raise-capable
  call fires once: an exception in iteration *i* leaves iterations
  ``< i`` applied (the ``FleetState.drain`` shape);
* a ``try`` with handlers or a ``finally`` exempts its subtree — the
  author has taken responsibility for rollback — and resets the machine;
* ``if``/``elif`` branches are analyzed with copies of the incoming
  state; ``with`` bodies share it (they always execute).

``__init__`` is exempt: a constructor that raises surrenders the
half-built object to the garbage collector, not to other threads.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.core import Finding, Rule, register_rule
from repro.analysis.callgraph import FunctionInfo, ProjectIndex
from repro.analysis.summaries import SummaryTable, table_for

__all__ = ["AtomicityRule", "TARGET_CLASSES"]

#: Classes whose multi-field update sequences must be exception-safe.
TARGET_CLASSES: frozenset[str] = frozenset(
    {"FleetState", "CapacityTracker", "GatherTableCache", "CacheStats"}
)


def _self_mutations(stmt: ast.stmt) -> list[tuple[ast.expr, str]]:
    """``(target, attr)`` for each self-rooted mutation in a statement."""
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    else:
        return []
    found: list[tuple[ast.expr, str]] = []

    def visit(target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                visit(element)
            return
        node = target
        attr = ""
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute):
                attr = node.attr
            node = node.value
        if isinstance(node, ast.Name) and node.id == "self" and attr:
            found.append((target, attr))

    for target in targets:
        visit(target)
    return found


@dataclass
class _State:
    """Sequence-machine state: the last mutation, and a pending risky call."""

    mut: tuple[int, str] | None = None  # (line, attr)
    rc: tuple[ast.Call, str] | None = None  # (call node, callee qualname)

    def copy(self) -> "_State":
        return _State(mut=self.mut, rc=self.rc)


@register_rule
class AtomicityRule(Rule):
    """Flag mutate → raise-capable call → mutate sequences without rollback."""

    rule_id = "atomicity"
    description = (
        "FleetState / CapacityTracker / cache methods must not interleave a "
        "raise-capable call between field mutations without try/finally or "
        "a locals-then-assign rewrite"
    )

    def check_interprocedural(self, project: ProjectIndex) -> list[Finding]:
        table = table_for(project)
        findings: list[Finding] = []
        for class_name in sorted(TARGET_CLASSES):
            info = project.classes.get(class_name)
            if info is None:
                continue
            for method in info.methods.values():
                if method.name == "__init__":
                    continue
                self._check_method(method, project, table, findings)
        return findings

    # ------------------------------------------------------------------ #
    # per-method sequence machine
    # ------------------------------------------------------------------ #

    def _check_method(
        self,
        method: FunctionInfo,
        project: ProjectIndex,
        table: SummaryTable,
        findings: list[Finding],
    ) -> None:
        local_types = project._local_types(method)

        def risky_calls(node: ast.AST) -> list[tuple[ast.Call, str]]:
            """Resolved raise-capable calls anywhere under ``node``."""
            out: list[tuple[ast.Call, str]] = []
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                for callee in project.resolve_call(call, method, local_types):
                    if table.raise_capable(callee):
                        out.append((call, callee.qualname))
                        break
            return out

        def fire_sequence(state: _State, mut_line: int, attr: str) -> None:
            assert state.mut is not None and state.rc is not None
            call, callee = state.rc
            findings.append(
                method.module.finding(
                    self.rule_id,
                    call,
                    f"{method.qualname} mutates self.{state.mut[1]} (line "
                    f"{state.mut[0]}) and self.{attr} (line {mut_line}) with "
                    f"raise-capable call {callee} between them and no "
                    "try/finally or rollback — an exception leaves the object "
                    "half-updated",
                    "compute into locals and assign after the last "
                    "raise-capable call, or wrap the sequence in try/finally "
                    "with a rollback",
                )
            )

        def scan_block(stmts: list[ast.stmt], state: _State) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(stmt, ast.Try):
                    if stmt.handlers or stmt.finalbody:
                        # Author-handled: exempt the subtree, reset the machine.
                        state.mut = None
                        state.rc = None
                        continue
                    scan_block(stmt.body, state)
                    continue
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    scan_block(stmt.body, state)
                    continue
                if isinstance(stmt, ast.If):
                    scan_block(stmt.body, state.copy())
                    scan_block(stmt.orelse, state.copy())
                    continue
                if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                    self._check_loop(stmt, method, risky_calls, findings)
                    muts = [
                        m
                        for inner in stmt.body
                        for m in self._block_mutations(inner)
                    ]
                    rcs = risky_calls(stmt)
                    if muts:
                        target, attr = muts[-1]
                        state.mut = (target.lineno, attr)
                        state.rc = None
                    elif rcs and state.mut is not None:
                        state.rc = state.rc or rcs[0]
                    continue
                if isinstance(stmt, (ast.Raise, ast.Assert)):
                    continue  # guards; a direct raise is not a finding
                # Simple statement: calls evaluate before the target store.
                rcs = risky_calls(stmt)
                muts = _self_mutations(stmt)
                if rcs and state.mut is not None and state.rc is None:
                    state.rc = rcs[0]
                if muts:
                    target, attr = muts[0]
                    if state.mut is not None and state.rc is not None:
                        fire_sequence(state, target.lineno, attr)
                    last_target, last_attr = muts[-1]
                    state.mut = (last_target.lineno, last_attr)
                    state.rc = None

        scan_block(list(method.node.body), _State())

    def _block_mutations(self, stmt: ast.stmt) -> list[tuple[ast.expr, str]]:
        """Self-mutations in a statement subtree (excluding protected trys)."""
        out: list[tuple[ast.expr, str]] = []
        stack: list[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Try) and (node.handlers or node.finalbody):
                continue
            if isinstance(node, ast.stmt):
                out.extend(_self_mutations(node))
            stack.extend(ast.iter_child_nodes(node))
        return out

    def _check_loop(
        self,
        loop: ast.For | ast.AsyncFor | ast.While,
        method: FunctionInfo,
        risky_calls,
        findings: list[Finding],
    ) -> None:
        muts = [m for stmt in loop.body for m in self._block_mutations(stmt)]
        if not muts:
            return
        rcs = [
            rc
            for stmt in loop.body
            for rc in risky_calls(stmt)
        ]
        if not rcs:
            return
        call, callee = rcs[0]
        attrs = ", ".join(sorted({f"self.{attr}" for _, attr in muts}))
        findings.append(
            method.module.finding(
                self.rule_id,
                call,
                f"{method.qualname}: loop body mutates {attrs} and makes "
                f"raise-capable call {callee} each iteration — an exception "
                "mid-loop leaves earlier iterations applied",
                "split into two loops (all raise-capable work first, then "
                "the mutations), or build into locals and commit after",
            )
        )

"""Blocking-under-lock rule: no slow I/O inside a critical section.

The service's writer-preferring ``ReadWriteLock`` stalls *every* reader
while a writer runs, so anything slow under ``write_locked()`` — an
``os.fsync``, a file ``write``/``flush``, an ``open``, a ``subprocess``
spawn (the compile-on-demand kernel build), a ``time.sleep`` — turns one
request's disk latency into fleet-wide convoy.  The same applies to the
cache's mutex and the counters lock.  This rule walks every call site
whose held-lock set contains a *trigger* lock (a write-mode RW
acquisition, or any plain mutex / RLock / condition — shared *read*
acquisitions do not block other readers and are exempt) and reports:

* direct blocking operations at the site, and
* calls into functions that transitively reach one, with the resolved
  call chain in the message (``submit -> Journal.append ->
  Journal._write_line``), anchored at the outermost call site so a
  ``# lint: allow(blocking-under-lock)`` pragma can bless a deliberate
  design (the WAL append under the write lock) exactly where the
  decision is made.
"""

from __future__ import annotations

from repro.analysis.core import Finding, Rule, register_rule
from repro.analysis.callgraph import ProjectIndex
from repro.analysis.summaries import LockAcquisition, table_for

__all__ = ["BlockingUnderLockRule"]


def _trigger(acq: LockAcquisition) -> bool:
    """Whether holding this acquisition makes blocking ops a finding."""
    if acq.mode == "read":
        return False  # shared read side: other readers proceed
    return True  # write-mode RW, plain lock/rlock/condition, unknown


@register_rule
class BlockingUnderLockRule(Rule):
    """Flag blocking operations reachable while an exclusive lock is held."""

    rule_id = "blocking-under-lock"
    description = (
        "os.fsync / file writes / subprocess / sleep must not run (directly "
        "or via calls) while write_locked() or a plain mutex is held"
    )

    def check_interprocedural(self, project: ProjectIndex) -> list[Finding]:
        table = table_for(project)
        findings: list[Finding] = []
        for summary in table.summaries.values():
            module = summary.func.module
            for site in summary.calls:
                triggers = [acq for acq in site.held if _trigger(acq)]
                if not triggers:
                    continue
                held_names = ", ".join(
                    sorted({acq.display for acq in triggers})
                )
                direct = table.blocking_op(site.node)
                if direct is not None:
                    findings.append(
                        module.finding(
                            self.rule_id,
                            site.node,
                            f"blocking operation {direct} inside a critical "
                            f"section (holding {held_names})",
                            "move the I/O outside the lock, or mark the "
                            "deliberate design with "
                            "# lint: allow(blocking-under-lock)",
                        )
                    )
                    continue
                for callee in site.resolved:
                    chain = table.transitive_blocking(callee)
                    if chain is None:
                        continue
                    op, path = chain
                    route = " -> ".join(
                        (summary.func.qualname, *path)
                    )
                    findings.append(
                        module.finding(
                            self.rule_id,
                            site.node,
                            f"call reaches blocking operation {op} while "
                            f"holding {held_names} (chain: {route})",
                            "move the call outside the lock, or mark the "
                            "deliberate design with "
                            "# lint: allow(blocking-under-lock)",
                        )
                    )
                    break  # one finding per site is enough
        return findings

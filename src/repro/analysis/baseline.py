"""Baseline handling: only *new* findings fail the build.

A lint gate retrofitted onto a living codebase needs a way to adopt
rules before every historical finding is fixed: the committed baseline
file (``lint_baseline.json`` at the repo root) lists the findings that
are known and accepted, and the runner fails only on findings *not* in
it.  The shipped baseline is empty — every rule's findings were fixed in
the PR that introduced the pass — so in practice any finding fails CI;
the mechanism exists so a future rule can land with documented debt
instead of being watered down.

Entries key on ``(rule, path, source snippet)`` rather than line numbers,
so a baseline does not churn when unrelated edits move a flagged line.
Update the file with ``soar-repro lint --update-baseline`` (and commit
the diff, which is what makes the accepted debt explicit and reviewed).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.core import Finding

__all__ = ["DEFAULT_BASELINE", "load_baseline", "split_findings", "write_baseline"]

#: Repo-relative location of the committed baseline.
DEFAULT_BASELINE: str = "lint_baseline.json"

_VERSION = 1


def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    """The accepted finding keys; an absent file means an empty baseline."""
    path = Path(path)
    if not path.exists():
        return set()
    payload = json.loads(path.read_text())
    if payload.get("version") != _VERSION:
        raise ValueError(
            f"unknown baseline version {payload.get('version')!r} in {path}"
        )
    return {
        (entry["rule"], entry["path"], entry["snippet"])
        for entry in payload.get("findings", [])
    }


def write_baseline(findings: list[Finding], path: str | Path) -> Path:
    """Write the current findings as the new accepted baseline."""
    path = Path(path)
    entries = sorted(
        {finding.key() for finding in findings}
    )
    payload = {
        "version": _VERSION,
        "findings": [
            {"rule": rule, "path": file_path, "snippet": snippet}
            for rule, file_path, snippet in entries
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def split_findings(
    findings: list[Finding], baseline: set[tuple[str, str, str]]
) -> tuple[list[Finding], list[Finding], set[tuple[str, str, str]]]:
    """Partition findings into (new, baselined) and report stale entries.

    Stale entries — baseline lines that no longer fire — are returned so
    ``--strict`` can fail on them: a stale baseline hides the fact that
    debt was paid off, and the next regression would slip through it.
    """
    new: list[Finding] = []
    known: list[Finding] = []
    seen: set[tuple[str, str, str]] = set()
    for finding in findings:
        key = finding.key()
        if key in baseline:
            known.append(finding)
            seen.add(key)
        else:
            new.append(finding)
    stale = baseline - seen
    return new, known, stale

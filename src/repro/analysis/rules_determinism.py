"""Determinism rules: the hazards that break bit-identical reproduction.

The repository's central gate is that every engine, kernel, and replay
mode produces *bit-identical* results.  Three code shapes silently break
that without failing any unit test:

* **Unseeded randomness** (``determinism-rng``) — a zero-argument
  ``np.random.default_rng()`` / ``np.random.SeedSequence()``, the legacy
  module-level numpy RNG (``np.random.randint`` and friends share hidden
  global state), or the stdlib ``random`` module's top-level functions.
  Every generator in this codebase is threaded explicitly from a seed.
* **Wall-clock reads in the pure layers** (``determinism-clock``) —
  ``time.time()`` / ``datetime.now()`` inside ``repro.core`` or
  ``repro.topology`` means an algorithm result can depend on when it ran.
  (The service layer may measure latency with ``perf_counter``; the pure
  layers compute functions of their inputs only.)
* **Unordered iteration into order-sensitive reductions**
  (``determinism-order``) — iterating a ``set``/``frozenset`` into a
  ``sum()`` (float summation order changes the bits; string hashes are
  randomized per process), or feeding set/dict iteration into a chained
  digest (``_digest`` / ``hashlib``) whose value depends on entry order.
  Order-independent sinks — ``sorted(...)``,
  :class:`repro.core.tree.IncrementalDigest`, ``len``/``min``/``max`` —
  are the sanctioned alternatives and are not flagged.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, Rule, SourceModule, register_rule

__all__ = ["UnseededRngRule", "WallClockRule", "UnorderedReductionRule"]

#: Legacy module-level numpy RNG entry points (hidden shared global state).
_LEGACY_NUMPY_RNG: frozenset[str] = frozenset(
    {
        "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
        "exponential", "gamma", "geometric", "lognormal", "normal",
        "permutation", "poisson", "rand", "randint", "randn", "random",
        "random_sample", "ranf", "sample", "seed", "shuffle", "standard_normal",
        "uniform", "zipf",
    }
)

#: stdlib ``random`` attributes that are *not* the shared-state functions.
_STDLIB_RANDOM_OK: frozenset[str] = frozenset(
    {"Random", "SystemRandom", "getstate", "setstate"}
)

#: Wall-clock reads (resolved against import aliases).
_WALL_CLOCK: frozenset[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.asctime",
        "time.localtime",
        "time.gmtime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Module prefixes the wall-clock rule applies to (the pure layers).
_PURE_LAYERS: tuple[str, ...] = ("repro.core", "repro.topology")


def _import_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted things they import.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from datetime import datetime`` -> ``{"datetime": "datetime.datetime"}``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _resolve(expr: ast.expr, aliases: dict[str, str]) -> str:
    """Dotted name of an attribute chain, with the base alias resolved."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    base = aliases.get(node.id, node.id)
    return ".".join([base, *reversed(parts)])


@register_rule
class UnseededRngRule(Rule):
    """Flag unseeded / global-state randomness anywhere in the library."""

    rule_id = "determinism-rng"
    description = (
        "no unseeded np.random.default_rng()/SeedSequence(), no legacy "
        "np.random.* global-state calls, no stdlib random.* module calls"
    )

    def check_module(self, module: SourceModule) -> list[Finding]:
        aliases = _import_aliases(module.tree)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _resolve(node.func, aliases)
            if name in ("numpy.random.default_rng", "numpy.random.SeedSequence"):
                if not node.args and not node.keywords:
                    findings.append(
                        module.finding(
                            self.rule_id,
                            node,
                            f"unseeded {name}() draws fresh OS entropy",
                            "thread an explicit seed or Generator through the call",
                        )
                    )
                continue
            if (
                name.startswith("numpy.random.")
                and name.rsplit(".", 1)[1] in _LEGACY_NUMPY_RNG
            ):
                findings.append(
                    module.finding(
                        self.rule_id,
                        node,
                        f"legacy global-state RNG call {name}()",
                        "use an explicitly seeded np.random.default_rng(seed)",
                    )
                )
                continue
            if name.startswith("random.") and aliases.get("random", "") == "random":
                attr = name.split(".", 1)[1]
                if "." not in attr and attr not in _STDLIB_RANDOM_OK:
                    findings.append(
                        module.finding(
                            self.rule_id,
                            node,
                            f"stdlib random.{attr}() uses hidden shared state",
                            "use random.Random(seed) or a numpy Generator",
                        )
                    )
        return findings


@register_rule
class WallClockRule(Rule):
    """Flag wall-clock reads inside the pure layers (core / topology)."""

    rule_id = "determinism-clock"
    description = "no time.time()/datetime.now() inside repro.core or repro.topology"

    def check_module(self, module: SourceModule) -> list[Finding]:
        if not module.module.startswith(_PURE_LAYERS):
            return []
        aliases = _import_aliases(module.tree)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _resolve(node.func, aliases)
            if name in _WALL_CLOCK:
                findings.append(
                    module.finding(
                        self.rule_id,
                        node,
                        f"wall-clock read {name}() in pure layer {module.module}",
                        "pure layers compute functions of their inputs; pass "
                        "timestamps in from the service/experiment layer",
                    )
                )
        return findings


# --------------------------------------------------------------------------- #
# unordered iteration feeding order-sensitive reductions
# --------------------------------------------------------------------------- #


def _is_set_marker(expr: ast.expr, set_names: frozenset[str]) -> bool:
    """Syntactically a set/frozenset value (unordered iteration)."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in ("set", "frozenset")
    if isinstance(expr, ast.Name):
        return expr.id in set_names
    return False


def _is_dict_marker(expr: ast.expr) -> bool:
    """Syntactically a dict (or a ``.keys()/.values()/.items()`` view)."""
    if isinstance(expr, (ast.Dict, ast.DictComp)):
        return True
    if isinstance(expr, ast.Call):
        if isinstance(expr.func, ast.Attribute) and expr.func.attr in (
            "keys",
            "values",
            "items",
        ):
            return True
        if isinstance(expr.func, ast.Name) and expr.func.id == "dict":
            return True
    return False


def _unordered_iterable(
    expr: ast.expr, set_names: frozenset[str], include_dicts: bool
) -> bool:
    """Whether ``expr`` iterates in an order the language does not pin.

    A set literal/comprehension is unordered outright (its *result* is a
    set, whatever it was built from); a generator or list comprehension
    inherits the hazard from the iterable its first generator draws from.
    """
    if _is_set_marker(expr, set_names):
        return True
    if isinstance(expr, (ast.GeneratorExp, ast.ListComp)):
        return _unordered_iterable(
            expr.generators[0].iter, set_names, include_dicts
        )
    return include_dicts and _is_dict_marker(expr)


def _set_bound_names(tree: ast.AST) -> frozenset[str]:
    """Names assigned from set expressions (one level of local inference)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_set_marker(node.value, frozenset()):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return frozenset(names)


def _hasher_names(tree: ast.AST, aliases: dict[str, str]) -> frozenset[str]:
    """Names bound to ``hashlib.*()`` hasher objects."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _resolve(node.value.func, aliases).startswith("hashlib."):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return frozenset(names)


@register_rule
class UnorderedReductionRule(Rule):
    """Flag set/dict iteration feeding sums or chained digests."""

    rule_id = "determinism-order"
    description = (
        "no set iteration into sum()/fsum(), no set/dict iteration into "
        "chained digests — sort first, or use an order-independent combine"
    )

    #: Digest sinks whose value depends on feed order.
    _DIGEST_SINKS: frozenset[str] = frozenset({"_digest"})

    def check_module(self, module: SourceModule) -> list[Finding]:
        aliases = _import_aliases(module.tree)
        set_names = _set_bound_names(module.tree)
        hashers = _hasher_names(module.tree, aliases)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                findings.extend(
                    self._check_call(node, module, aliases, set_names)
                )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                findings.extend(
                    self._check_update_loop(node, module, set_names, hashers)
                )
        return findings

    def _check_call(
        self,
        node: ast.Call,
        module: SourceModule,
        aliases: dict[str, str],
        set_names: frozenset[str],
    ) -> list[Finding]:
        name = _resolve(node.func, aliases)
        if not node.args:
            return []
        arg = node.args[0]
        if name in ("sum", "math.fsum"):
            if _unordered_iterable(arg, set_names, include_dicts=False):
                return [
                    module.finding(
                        self.rule_id,
                        node,
                        f"{name}() over set iteration: float summation order "
                        "(and str hash order) varies across processes",
                        "sum over sorted(...) to pin the reduction order",
                    )
                ]
            return []
        is_digest = (
            isinstance(node.func, ast.Name) and node.func.id in self._DIGEST_SINKS
        ) or name.startswith("hashlib.")
        if is_digest and _unordered_iterable(arg, set_names, include_dicts=True):
            return [
                module.finding(
                    self.rule_id,
                    node,
                    "chained digest fed by unordered set/dict iteration: the "
                    "fingerprint depends on entry order",
                    "digest sorted(...) entries, or use IncrementalDigest "
                    "(order-independent multiset combine)",
                )
            ]
        return []

    def _check_update_loop(
        self,
        node: ast.For | ast.AsyncFor,
        module: SourceModule,
        set_names: frozenset[str],
        hashers: frozenset[str],
    ) -> list[Finding]:
        if not _unordered_iterable(node.iter, set_names, include_dicts=True):
            return []
        findings: list[Finding] = []
        for inner in ast.walk(node):
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr == "update"
                and isinstance(inner.func.value, ast.Name)
                and inner.func.value.id in hashers
            ):
                findings.append(
                    module.finding(
                        self.rule_id,
                        inner,
                        "hasher.update() inside a loop over unordered set/dict "
                        "iteration: the digest depends on entry order",
                        "iterate sorted(...) entries, or use IncrementalDigest",
                    )
                )
        return findings

"""Visitor core of the codebase-specific static-analysis pass.

The repo enforces three properties that generic linters cannot see:
bit-identical determinism across engines (the reproduction gate), the
writer-preferring lock discipline around the service's mutable fleet
objects, and the coherence of the three kernel registries plus the
hand-written ctypes prototypes of the compiled backend.  This package is
the mechanical check for those properties: a small AST lint framework
(:class:`Rule` registry + :class:`SourceModule` walker + fixture runner)
with rules written against *this* codebase's idioms, run by
``soar-repro lint`` / ``python -m repro.analysis`` and gated in CI.

This module holds the shared machinery:

* :class:`Finding` — one diagnostic, carrying ``file:line``, the rule id,
  and a one-line fix hint.  Its :meth:`Finding.key` (rule, file, source
  snippet) is the identity baselines are diffed against, so findings
  survive unrelated line drift.
* :class:`SourceModule` — a parsed source file plus its dotted module
  name (the layering and scope-restricted rules key on it).
* :class:`Rule` / :func:`register_rule` — the rule registry.  Rules hook
  in at three granularities: :meth:`Rule.check_module` (per parsed
  file), :meth:`Rule.check_project` (repo-wide facts: registry imports,
  the C/ctypes cross-check), and :meth:`Rule.check_interprocedural`
  (facts needing the whole-program call graph — see
  :mod:`repro.analysis.callgraph`).
* suppression — a trailing ``# lint: allow(rule-id)`` pragma on the
  flagged line (or the line above) silences exactly that rule there.
  Pragmas match against the *full line span* of the statement they sit
  on, so a pragma on the ``with``/decorator line of a multi-line
  statement still reaches a finding anchored to a child line.
* :func:`run_fixture` — the fixture runner: test fixtures declare the
  module name they should be linted *as* via a
  ``# lint-fixture-module: repro...`` header, so scope-restricted rules
  (wall-clock in ``repro.core``, broad excepts in ``repro.service``)
  are exercised from files living under ``tests/analysis_fixtures/``.
"""

from __future__ import annotations

import ast
import re
from collections import Counter
from dataclasses import dataclass, field, replace
from pathlib import Path

__all__ = [
    "Finding",
    "PARSE_COUNTS",
    "Rule",
    "RULES",
    "SourceModule",
    "filter_suppressed",
    "lint_source",
    "module_name_for",
    "register_rule",
    "run_fixture",
    "suppressed_lines",
    "suppression_spans",
]

#: How many times each path was fed through :meth:`SourceModule.parse`
#: this process.  The runner's shared-AST pipeline promises one parse per
#: file per run; ``tests/test_static_analysis.py`` resets this counter,
#: lints the tree, and asserts exactly that.
PARSE_COUNTS: Counter[str] = Counter()


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule.

    ``snippet`` is the stripped source line the finding anchors to; the
    baseline keys on it (not the line number) so committed baselines do
    not churn when unrelated code moves a flagged line around.
    """

    rule: str
    path: str
    line: int
    message: str
    hint: str
    snippet: str = ""
    #: Last line of the flagged construct (``node.end_lineno``); equal to
    #: ``line`` for single-line findings.  Pragma spans and the SARIF /
    #: GitHub renderers use it; the baseline key does not.
    end_line: int = 0

    def __post_init__(self) -> None:
        if self.end_line < self.line:
            object.__setattr__(self, "end_line", self.line)

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: rule, repo-relative path, source snippet."""
        return (self.rule, self.path, self.snippet)

    def format(self) -> str:
        """Render as ``file:line: [rule] message  (fix: hint)``."""
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"  (fix: {self.hint})"
        return text


#: Pragma silencing one rule on one line: ``# lint: allow(rule-id)``.
_ALLOW_PRAGMA = re.compile(r"#\s*lint:\s*allow\(\s*([a-z0-9-]+)\s*\)")

#: Fixture header declaring the module name a fixture is linted as.
_FIXTURE_MODULE = re.compile(r"#\s*lint-fixture-module:\s*([A-Za-z0-9_.]+)")


def suppressed_lines(text: str) -> dict[int, set[str]]:
    """Map line number -> rule ids suppressed there by ``allow`` pragmas.

    A trailing pragma suppresses its own line; a pragma on a
    comment-only line suppresses the line below it, so the pragma can sit
    either on the flagged statement or on its own line above.
    """
    suppressed: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _ALLOW_PRAGMA.finditer(line):
            rule = match.group(1)
            comment_only = line.lstrip().startswith("#")
            target = lineno + 1 if comment_only else lineno
            suppressed.setdefault(target, set()).add(rule)
    return suppressed


@dataclass
class SourceModule:
    """A parsed source file as the rules see it."""

    path: str
    module: str
    text: str
    tree: ast.AST
    lines: list[str] = field(default_factory=list)

    @classmethod
    def parse(
        cls, path: str | Path, module: str | None = None, text: str | None = None
    ) -> "SourceModule":
        """Parse ``path`` (or ``text``) into a lintable module.

        ``module`` overrides the dotted module name (the fixture runner
        uses this); otherwise it is derived from the path's position
        under ``src/``.
        """
        path = Path(path)
        if text is None:
            text = path.read_text()
        if module is None:
            module = module_name_for(path)
        PARSE_COUNTS[str(path)] += 1
        tree = ast.parse(text, filename=str(path))
        return cls(
            path=str(path),
            module=module,
            text=text,
            tree=tree,
            lines=text.splitlines(),
        )

    def snippet(self, lineno: int) -> str:
        """The stripped source line a finding anchors to."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str, hint: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        lineno = getattr(node, "lineno", 1)
        return Finding(
            rule=rule,
            path=self.path,
            line=lineno,
            message=message,
            hint=hint,
            snippet=self.snippet(lineno),
            end_line=getattr(node, "end_lineno", None) or lineno,
        )


def module_name_for(path: Path) -> str:
    """Dotted module name for a file, from its position under ``src/``.

    Files outside a ``src/`` tree (fixtures, scratch files) fall back to
    their stem — scope-restricted rules then simply do not apply, unless
    the caller overrides the name (see :func:`run_fixture`).
    """
    parts = list(path.resolve().parts)
    if "src" in parts:
        rel = parts[parts.index("src") + 1 :]
        if rel:
            if rel[-1] == "__init__.py":
                rel = rel[:-1]
            elif rel[-1].endswith(".py"):
                rel = rel[:-1] + [rel[-1][: -len(".py")]]
            return ".".join(rel)
    return path.stem


class Rule:
    """Base class: one named check with per-module and per-project hooks."""

    #: Unique kebab-case identifier, referenced by pragmas and baselines.
    rule_id: str = ""
    #: One-line description shown by ``soar-repro lint --list-rules``.
    description: str = ""

    def check_module(self, module: SourceModule) -> list[Finding]:
        """Findings for one parsed source file (default: none)."""
        return []

    def check_project(self, root: Path) -> list[Finding]:
        """Repo-wide findings (registry imports, FFI cross-checks)."""
        return []

    def check_interprocedural(self, project) -> list[Finding]:
        """Findings over the whole-program call graph.

        ``project`` is a :class:`repro.analysis.callgraph.ProjectIndex`
        built once per run from the shared parsed modules (the annotation
        stays loose to keep this module free of the callgraph import).
        Default: none.
        """
        return []


#: The rule registry, keyed by rule id (import :mod:`repro.analysis` to
#: populate it — each rule module self-registers, like the kernel
#: registries in :mod:`repro.core`).
RULES: dict[str, Rule] = {}


def register_rule(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to :data:`RULES` (id must be unique)."""
    if not rule_class.rule_id:
        raise ValueError(f"{rule_class.__name__} declares no rule_id")
    if rule_class.rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule_class.rule_id!r}")
    RULES[rule_class.rule_id] = rule_class()
    return rule_class


def _statement_header_span(stmt: ast.stmt) -> tuple[int, int]:
    """The line range of a statement's *header* (body excluded).

    For simple statements this is the whole statement.  For compound
    statements it runs from the first decorator line (defs) or the
    keyword line to the end of the header expressions — the ``with``
    items, the loop iterable, the ``if`` test, the full signature — but
    never into the body, so a pragma on a ``with`` line cannot blanket
    an entire block.
    """
    start = stmt.lineno
    end = stmt.lineno
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        for decorator in stmt.decorator_list:
            start = min(start, decorator.lineno)
    if not hasattr(stmt, "body"):
        return start, getattr(stmt, "end_lineno", None) or end
    body_fields = {"body", "orelse", "finalbody", "handlers"}
    for field_name, value in ast.iter_fields(stmt):
        if field_name in body_fields:
            continue
        nodes = value if isinstance(value, list) else [value]
        for node in nodes:
            if isinstance(node, ast.AST):
                node_end = getattr(node, "end_lineno", None)
                if node_end is not None:
                    end = max(end, node_end)
    return start, end


def suppression_spans(module: SourceModule) -> list[tuple[int, int, frozenset[str]]]:
    """Pragma suppressions widened to full statement-header spans.

    Each ``# lint: allow(rule-id)`` pragma targets a line (its own, or
    the one below for a comment-only line).  A finding on that exact line
    is always suppressed; additionally, when the target line falls inside
    a statement's header span (a multi-line ``with`` item list, a
    decorated ``def`` signature, a call broken across lines), the pragma
    covers the whole span — so findings anchored to a *child* line of the
    same statement are suppressed too.
    """
    by_line = suppressed_lines(module.text)
    spans: list[tuple[int, int, frozenset[str]]] = [
        (line, line, frozenset(rules)) for line, rules in by_line.items()
    ]
    if not by_line:
        return spans
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.stmt):
            continue
        start, end = _statement_header_span(node)
        if end <= start:
            continue
        for line, rules in by_line.items():
            if start <= line <= end:
                spans.append((start, end, frozenset(rules)))
    return spans


def filter_suppressed(module: SourceModule, findings: list[Finding]) -> list[Finding]:
    """Drop findings silenced by an ``allow`` pragma in ``module``."""
    spans = suppression_spans(module)
    if not spans:
        return list(findings)

    def keep(finding: Finding) -> bool:
        for start, end, rules in spans:
            if finding.rule in rules and start <= finding.line <= end:
                return False
        return True

    return [finding for finding in findings if keep(finding)]


# Backwards-compatible private alias (pre-span name).
_filter_suppressed = filter_suppressed


def lint_source(
    path: str | Path,
    module: str | None = None,
    text: str | None = None,
    rules: list[Rule] | None = None,
) -> list[Finding]:
    """Run the per-module rules over one file; pragmas already filtered.

    ``module`` overrides the dotted module name so scope-restricted rules
    can be exercised on files living anywhere (the fixture runner and the
    unit tests use this).
    """
    parsed = SourceModule.parse(path, module=module, text=text)
    active = list(RULES.values()) if rules is None else rules
    findings: list[Finding] = []
    for rule in active:
        findings.extend(rule.check_module(parsed))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return _filter_suppressed(parsed, findings)


def run_fixture(path: str | Path, rules: list[Rule] | None = None) -> list[Finding]:
    """The fixture runner: lint a fixture as the module it declares.

    Fixture files under ``tests/analysis_fixtures/`` carry a
    ``# lint-fixture-module: repro.service.fixture`` header naming the
    module they should be analyzed *as* — that is what subjects them to
    the scope-restricted rules.  A fixture without the header is linted
    under its own stem (scope-restricted rules will not fire).

    Besides the per-module rules, the fixture is wrapped in a
    single-module :class:`~repro.analysis.callgraph.ProjectIndex` and fed
    through every interprocedural rule, so the lock-order / blocking /
    atomicity fixtures exercise the same code path the runner uses.
    """
    path = Path(path)
    text = path.read_text()
    match = _FIXTURE_MODULE.search(text)
    module = match.group(1) if match else None
    parsed = SourceModule.parse(path, module=module, text=text)
    active = list(RULES.values()) if rules is None else rules
    findings: list[Finding] = []
    for rule in active:
        findings.extend(rule.check_module(parsed))
    # Lazy import: callgraph imports SourceModule from this module.
    from repro.analysis.callgraph import ProjectIndex

    project = ProjectIndex.build([parsed])
    for rule in active:
        findings.extend(rule.check_interprocedural(project))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return filter_suppressed(parsed, findings)

"""Codebase-specific static analysis for the SOAR reproduction.

Generic linters cannot see the three properties this repo lives or dies
by: bit-identical determinism across gather engines, the
writer-preferring lock discipline around the service's mutable fleet
objects, and the coherence of the engine/colour/cost registries plus the
hand-written ctypes prototypes of the compiled backend.  This package is
the mechanical check for all of them — a small AST lint framework
(:mod:`repro.analysis.core`) plus rules written against this codebase's
idioms, run by ``soar-repro lint`` / ``python -m repro.analysis`` and
gated in CI against a committed baseline (:mod:`repro.analysis.baseline`).

Rules (each in its own module, self-registered on import):

* ``lock-discipline`` — mutations of ``FleetState`` /
  ``CapacityTracker`` / ``GatherTableCache`` only inside those classes,
  under a writer lock, or in ``@_requires_write`` functions.
* ``determinism-rng`` / ``determinism-clock`` / ``determinism-order`` —
  no unseeded RNG, no wall-clock reads in ``repro.core`` /
  ``repro.topology``, no unordered set/dict iteration feeding numeric
  reductions or digests.
* ``registry-coherence`` — every ``ENGINES`` name resolves in
  ``COLOR_KERNELS`` and ``COST_KERNELS``, directly or via a declared
  fallback.
* ``layering`` — ``repro.core`` / ``repro.topology`` never import the
  service/online/experiments layers above them.
* ``ffi-contract`` — the ``repro_*`` C prototypes match the ctypes
  ``argtypes`` / ``restype`` declarations symbol by symbol.
* ``broad-except`` — no bare/broad excepts in ``repro.service`` outside
  re-raise cleanup paths and the pragma-marked request loop.

Interprocedural rules (over the whole-program call graph built by
:mod:`repro.analysis.callgraph` and the lock summaries of
:mod:`repro.analysis.summaries`):

* ``lock-order`` — the global lock-acquisition graph is acyclic; cycles
  and non-reentrant re-acquisitions are reported as potential deadlocks,
  and the graph is emitted as a DOT artifact in CI.
* ``blocking-under-lock`` — no ``os.fsync`` / file write / ``open`` /
  ``subprocess`` / ``sleep`` reachable while ``write_locked()`` or a
  plain mutex is held (the deliberate WAL-append-under-write-lock site
  carries a pragma).
* ``atomicity`` — no raise-capable call between multi-field mutations of
  the shared fleet objects without try/finally or a locals-then-assign
  rewrite (the static cousin of the PR 5 ``note_forced_release`` bug).
"""

from __future__ import annotations

# Importing the rule modules populates the registry (self-registration).
import repro.analysis.rules_atomicity  # noqa: F401  (registration)
import repro.analysis.rules_blocking  # noqa: F401  (registration)
import repro.analysis.rules_determinism  # noqa: F401  (registration)
import repro.analysis.rules_excepts  # noqa: F401  (registration)
import repro.analysis.rules_ffi  # noqa: F401  (registration)
import repro.analysis.rules_layering  # noqa: F401  (registration)
import repro.analysis.rules_lockorder  # noqa: F401  (registration)
import repro.analysis.rules_locks  # noqa: F401  (registration)
import repro.analysis.rules_registry  # noqa: F401  (registration)
from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    split_findings,
    write_baseline,
)
from repro.analysis.callgraph import ProjectIndex
from repro.analysis.core import (
    PARSE_COUNTS,
    RULES,
    Finding,
    Rule,
    SourceModule,
    filter_suppressed,
    lint_source,
    module_name_for,
    register_rule,
    run_fixture,
    suppressed_lines,
    suppression_spans,
)
from repro.analysis.formats import FORMATS, render_findings
from repro.analysis.rules_ffi import check_ffi, parse_c_prototypes, parse_ctypes_decls
from repro.analysis.rules_lockorder import collect_lock_edges, lock_graph_dot
from repro.analysis.rules_registry import check_registries
from repro.analysis.runner import find_project_root, lint_project, main
from repro.analysis.summaries import SummaryTable, table_for

__all__ = [
    "DEFAULT_BASELINE",
    "FORMATS",
    "Finding",
    "PARSE_COUNTS",
    "ProjectIndex",
    "RULES",
    "Rule",
    "SourceModule",
    "SummaryTable",
    "check_ffi",
    "check_registries",
    "collect_lock_edges",
    "filter_suppressed",
    "find_project_root",
    "lint_project",
    "lint_source",
    "load_baseline",
    "lock_graph_dot",
    "main",
    "module_name_for",
    "parse_c_prototypes",
    "parse_ctypes_decls",
    "register_rule",
    "render_findings",
    "run_fixture",
    "split_findings",
    "suppressed_lines",
    "suppression_spans",
    "table_for",
    "write_baseline",
]

"""Lock-discipline rule: mutations of the service's shared mutable objects.

PR 5 made the service concurrent with one discipline: the mutable fleet
objects — :class:`~repro.service.state.FleetState`, its
:class:`~repro.online.capacity.CapacityTracker`, and the
:class:`~repro.service.cache.GatherTableCache` — are mutated only (a)
inside methods of those classes, or (b) under the service's writer lock
(``with self._fleet_lock.write_locked():``) / the cache's own mutex
(``with self._lock:``), or (c) in a function explicitly marked with a
``@_requires_write`` decorator (the caller owns the lock).  Everything
else goes through the request API.

A bare attribute mutation anywhere else — ``service.state._tenants[tid] =
record`` in a driver, ``tracker._residual[s] -= 1`` in an experiment —
compiles, passes the single-threaded tests, and silently breaks the
writer-preferring contract the concurrent replay relies on.  This rule
flags exactly those: assignments, augmented assignments, and deletions
whose *target object* is one of the protected instances, outside the
allowed contexts.

Protected objects are recognized two ways, both purely syntactic:

* an attribute chain passing through a known slot name (``_state`` /
  ``state`` / ``_tracker`` / ``tracker`` / ``_cache`` / ``cache`` /
  ``stats``) — e.g. ``service.state._admitted_total = 0``;
* a local name bound to a protected class — a parameter annotated
  ``FleetState``, or an assignment from ``CapacityTracker(...)`` — e.g.
  ``state._tenants.clear()``'s sibling ``state._tenants = {}``.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, Rule, SourceModule, register_rule

__all__ = ["LockDisciplineRule", "PROTECTED_CLASSES", "PROTECTED_ATTRS"]

#: Classes whose instances the discipline protects.
PROTECTED_CLASSES: frozenset[str] = frozenset(
    {"FleetState", "CapacityTracker", "GatherTableCache"}
)

#: Attribute slots those instances conventionally live in (both the
#: private slot and its public property view).
PROTECTED_ATTRS: frozenset[str] = frozenset(
    {"_state", "state", "_tracker", "tracker", "_cache", "cache", "stats"}
)

#: Decorator names that mark a function as lock-holding by contract.
_WRITE_DECORATORS: frozenset[str] = frozenset({"_requires_write", "requires_write"})

#: With-context attribute names that grant write access inside the block.
_LOCK_CONTEXTS: frozenset[str] = frozenset({"write_locked", "_lock", "lock"})


def _decorator_name(node: ast.expr) -> str:
    """Rightmost identifier of a decorator expression."""
    if isinstance(node, ast.Call):
        return _decorator_name(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _grants_write(item: ast.withitem) -> bool:
    """Whether one ``with`` item is a recognized lock acquisition."""
    expr = item.context_expr
    if isinstance(expr, ast.Call):
        expr = expr.func
    if isinstance(expr, ast.Attribute):
        return expr.attr in _LOCK_CONTEXTS
    if isinstance(expr, ast.Name):
        return expr.id in _LOCK_CONTEXTS
    return False


def _protected_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameter names annotated with a protected class."""
    names: set[str] = set()
    args = node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        annotation = arg.annotation
        if annotation is None:
            continue
        text = ast.unparse(annotation)
        if any(cls in text for cls in PROTECTED_CLASSES):
            names.add(arg.arg)
    return names


def _bound_protected_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Local names bound to protected instances inside ``node``.

    Recognizes ``x = FleetState(...)`` (constructor call) and
    ``x = <expr>.state`` / ``x = <expr>._tracker`` (pulling a protected
    slot into a local).
    """
    names: set[str] = set()
    for stmt in ast.walk(node):
        if not isinstance(stmt, ast.Assign):
            continue
        value = stmt.value
        bound = False
        if isinstance(value, ast.Call):
            callee = value.func
            callee_name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr
                if isinstance(callee, ast.Attribute)
                else ""
            )
            bound = callee_name in PROTECTED_CLASSES
        elif isinstance(value, ast.Attribute):
            bound = value.attr in PROTECTED_ATTRS
        if not bound:
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _mutated_object(target: ast.expr) -> ast.expr | None:
    """The object an assignment target mutates, or ``None``.

    ``x.attr = v`` mutates ``x``; ``x[i] = v`` mutates ``x``; a bare
    ``name = v`` mutates nothing but the local scope.
    """
    if isinstance(target, (ast.Attribute, ast.Subscript)):
        return target.value
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            mutated = _mutated_object(element)
            if mutated is not None:
                return mutated
    return None


def _chain_parts(expr: ast.expr) -> tuple[str, list[str]] | None:
    """Decompose an attribute/subscript chain into (base name, attrs).

    ``service.state._tenants[tid]`` -> ``("service", ["state", "_tenants"])``;
    returns ``None`` for expressions that are not simple chains (calls,
    literals) — those cannot be checked syntactically.
    """
    attrs: list[str] = []
    node = expr
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute):
            attrs.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Name):
            return node.id, list(reversed(attrs))
        else:
            return None


@register_rule
class LockDisciplineRule(Rule):
    """Flag mutations of protected fleet objects outside allowed contexts."""

    rule_id = "lock-discipline"
    description = (
        "FleetState / CapacityTracker / GatherTableCache may only be mutated "
        "inside their own methods, under a writer lock, or in @_requires_write "
        "functions"
    )

    def check_module(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        self._walk(
            module.tree,
            module,
            findings,
            in_protected_class=False,
            write_granted=False,
            protected_names=frozenset(),
        )
        return findings

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #

    def _walk(
        self,
        node: ast.AST,
        module: SourceModule,
        findings: list[Finding],
        in_protected_class: bool,
        write_granted: bool,
        protected_names: frozenset[str],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                self._walk(
                    child,
                    module,
                    findings,
                    in_protected_class=child.name in PROTECTED_CLASSES,
                    write_granted=write_granted,
                    protected_names=protected_names,
                )
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                granted = write_granted or any(
                    _decorator_name(decorator) in _WRITE_DECORATORS
                    for decorator in child.decorator_list
                )
                names = (
                    protected_names
                    | _protected_params(child)
                    | _bound_protected_names(child)
                )
                self._walk(
                    child,
                    module,
                    findings,
                    in_protected_class=in_protected_class,
                    write_granted=granted,
                    protected_names=frozenset(names),
                )
                continue
            if isinstance(child, (ast.With, ast.AsyncWith)):
                granted = write_granted or any(
                    _grants_write(item) for item in child.items
                )
                self._walk(
                    child,
                    module,
                    findings,
                    in_protected_class=in_protected_class,
                    write_granted=granted,
                    protected_names=protected_names,
                )
                continue
            if isinstance(child, (ast.Assign, ast.AugAssign, ast.Delete)):
                if not (in_protected_class or write_granted):
                    self._check_statement(child, module, findings, protected_names)
            self._walk(
                child,
                module,
                findings,
                in_protected_class=in_protected_class,
                write_granted=write_granted,
                protected_names=protected_names,
            )

    def _check_statement(
        self,
        stmt: ast.Assign | ast.AugAssign | ast.Delete,
        module: SourceModule,
        findings: list[Finding],
        protected_names: frozenset[str],
    ) -> None:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        else:
            targets = list(stmt.targets)
        for target in targets:
            mutated = _mutated_object(target)
            if mutated is None:
                continue
            chain = _chain_parts(mutated)
            if chain is None:
                continue
            base, attrs = chain
            through_slot = any(attr in PROTECTED_ATTRS for attr in attrs)
            protected_base = base in protected_names
            if not (through_slot or protected_base):
                continue
            findings.append(
                module.finding(
                    self.rule_id,
                    stmt,
                    f"mutation of protected object {ast.unparse(mutated)!r} "
                    "outside its class, a writer-lock block, or a "
                    "@_requires_write function",
                    "route the change through the owning class's methods, or "
                    "hold the writer lock (with ...write_locked():)",
                )
            )
            return

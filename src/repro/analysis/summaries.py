"""Per-function lock / blocking / raise summaries over the call graph.

This is the analysis layer the three interprocedural rule families share.
For every function in the :class:`~repro.analysis.callgraph.ProjectIndex`
it computes a :class:`FunctionSummary`:

* the **locks acquired** directly — ``with self._lock:`` /
  ``with self._counts_lock:`` / ``with <expr>.read_locked():`` /
  ``with <expr>.write_locked():`` — each canonicalized to an owner-class
  slot (``PlacementService._fleet_lock``) with an acquisition mode and
  the lock's constructor kind (``Lock`` / ``RLock`` / ``Condition`` /
  ``ReadWriteLock``);
* the **lock-order edges** witnessed inside the function (a lock
  acquired while another is held);
* the **blocking operations** invoked directly (``os.fsync``, file
  ``write``/``flush``, ``open`` / ``write_text`` / ``write_bytes``,
  ``subprocess.*``, ``time.sleep`` — the compile-on-demand kernel build
  is caught through its ``subprocess.run``);
* every **call site**, with the set of locks held at it;
* whether the function contains a ``raise`` statement.

On top of the per-function facts, three memoized transitive queries
propagate along resolved call edges (context-insensitive, recursion
guarded — the "bounded context" of the design):
:meth:`SummaryTable.transitive_acquisitions` (what a callee eventually
locks), :meth:`SummaryTable.transitive_blocking` (the call chain to the
nearest blocking op, if any), and :meth:`SummaryTable.raise_capable`
(can the callee raise).  Unresolved callees contribute nothing — the
rules stay quiet rather than noisy.

The bodies of recognized lock context managers (``read_locked`` /
``write_locked``) are *not* traversed as callees: they are the lock
implementation itself, and treating their internal ``Condition`` use as
ordinary acquisitions would wire the RW lock's machinery into every
caller's held-set.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.callgraph import FunctionInfo, ProjectIndex

__all__ = [
    "BLOCKING_ATTR_CALLS",
    "BLOCKING_QUALIFIED_CALLS",
    "LockAcquisition",
    "CallSite",
    "FunctionSummary",
    "SummaryTable",
    "table_for",
]

#: ``with <expr>.<mode>():`` context-manager methods granting RW access.
_RW_MODES: frozenset[str] = frozenset({"read_locked", "write_locked"})

#: Attribute-call names that block regardless of the receiver: file
#: handles, streams, and path writes.
BLOCKING_ATTR_CALLS: frozenset[str] = frozenset(
    {"flush", "fsync", "write_text", "write_bytes"}
)

#: Dotted (or bare) call names that block: syscalls and subprocess spawns.
BLOCKING_QUALIFIED_CALLS: frozenset[str] = frozenset(
    {
        "os.fsync",
        "fsync",
        "open",
        "subprocess.run",
        "subprocess.Popen",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "time.sleep",
        "sleep",
    }
)


@dataclass(frozen=True)
class LockAcquisition:
    """One lock acquisition site, canonicalized."""

    #: Canonical base-lock identity, e.g. ``PlacementService._fleet_lock``.
    lock: str
    #: ``"read"`` / ``"write"`` for RW locks, ``None`` for plain mutexes.
    mode: str | None
    #: Constructor kind: ``lock`` / ``rlock`` / ``condition`` / ``rwlock``
    #: / ``unknown``.
    kind: str
    path: str
    line: int

    @property
    def reentrant(self) -> bool:
        return self.kind == "rlock"

    @property
    def display(self) -> str:
        return f"{self.lock}[{self.mode}]" if self.mode else self.lock


@dataclass(frozen=True)
class CallSite:
    """One call expression, with the locks held when it runs."""

    node: ast.Call
    held: tuple[LockAcquisition, ...]
    resolved: tuple[FunctionInfo, ...]


@dataclass
class FunctionSummary:
    """Everything the interprocedural rules need to know about one function."""

    func: FunctionInfo
    acquisitions: list[LockAcquisition] = field(default_factory=list)
    #: (held, acquired) pairs witnessed directly in this function.
    order_edges: list[tuple[LockAcquisition, LockAcquisition]] = field(
        default_factory=list
    )
    #: (call node, op name) for direct blocking operations.
    blocking: list[tuple[ast.Call, str]] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    has_raise: bool = False


def _dotted_name(expr: ast.expr) -> str:
    """``os.fsync`` for ``os.fsync(...)``; ``""`` for non-chain callees."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def table_for(project: ProjectIndex) -> "SummaryTable":
    """The (cached) summary table of a project index.

    All three interprocedural rule families and the DOT emitter run over
    the same :class:`SummaryTable`; building it once per
    :class:`ProjectIndex` keeps the added passes within the PR 9 runner's
    wall-clock budget.
    """
    table = getattr(project, "_summary_table", None)
    if table is None:
        table = SummaryTable(project)
        project._summary_table = table
    return table


def _looks_like_lock(attr: str) -> bool:
    lowered = attr.lower()
    return "lock" in lowered or "cond" in lowered or "mutex" in lowered


class SummaryTable:
    """Summaries for every indexed function, plus the transitive queries."""

    def __init__(self, project: ProjectIndex) -> None:
        self.project = project
        self.summaries: dict[str, FunctionSummary] = {}
        self._acq_memo: dict[str, frozenset[LockAcquisition]] = {}
        self._block_memo: dict[str, tuple[str, tuple[str, ...]] | None] = {}
        self._raise_memo: dict[str, bool] = {}
        for info in list(project.functions.values()):
            self.summaries[info.qualname] = self._summarize(info)

    # ------------------------------------------------------------------ #
    # per-function summaries
    # ------------------------------------------------------------------ #

    def recognize_lock_item(
        self, item: ast.withitem, context: FunctionInfo
    ) -> LockAcquisition | None:
        """Classify one ``with`` item as a lock acquisition, if it is one."""
        expr = item.context_expr
        mode: str | None = None
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _RW_MODES
        ):
            mode = "read" if expr.func.attr == "read_locked" else "write"
            base: ast.expr = expr.func.value
        elif isinstance(expr, (ast.Attribute, ast.Name)):
            attr_name = expr.attr if isinstance(expr, ast.Attribute) else expr.id
            if not _looks_like_lock(attr_name):
                return None
            base = expr
        else:
            return None
        line = getattr(expr, "lineno", item.context_expr.lineno)
        path = context.module.path
        if isinstance(base, ast.Attribute):
            owner = self.project.infer_class(base.value, context)
            slot = base.attr
            if owner is not None:
                kind = self.project.lock_kind(owner, slot) or (
                    "rwlock" if mode else "unknown"
                )
                return LockAcquisition(
                    lock=f"{owner}.{slot}", mode=mode, kind=kind,
                    path=path, line=line,
                )
            return LockAcquisition(
                lock=f"{context.module.module}:{ast.unparse(base)}",
                mode=mode,
                kind="rwlock" if mode else "unknown",
                path=path,
                line=line,
            )
        if isinstance(base, ast.Name):
            return LockAcquisition(
                lock=f"{context.module.module}.{base.id}",
                mode=mode,
                kind="rwlock" if mode else "unknown",
                path=path,
                line=line,
            )
        return None

    def _summarize(self, info: FunctionInfo) -> FunctionSummary:
        summary = FunctionSummary(func=info)
        local_types = self.project._local_types(info)
        lock_call_nodes: set[int] = set()

        def handle(node: ast.AST, held: tuple[LockAcquisition, ...]) -> None:
            """One uniform dispatcher, wherever a node appears in the tree."""
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return  # nested defs are summarized as their own functions
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired: list[LockAcquisition] = []
                for item in node.items:
                    lock = self.recognize_lock_item(item, info)
                    if lock is not None:
                        if isinstance(item.context_expr, ast.Call):
                            lock_call_nodes.add(id(item.context_expr))
                        summary.acquisitions.append(lock)
                        for holder in (*held, *acquired):
                            summary.order_edges.append((holder, lock))
                        acquired.append(lock)
                    else:
                        handle(item.context_expr, held)
                    if item.optional_vars is not None:
                        handle(item.optional_vars, held)
                inner = (*held, *acquired)
                for stmt in node.body:
                    handle(stmt, inner)
                return
            if isinstance(node, ast.Raise):
                summary.has_raise = True
            if isinstance(node, ast.Call):
                visit_call(node, held)
            for child in ast.iter_child_nodes(node):
                handle(child, held)

        def visit_call(call: ast.Call, held: tuple[LockAcquisition, ...]) -> None:
            if id(call) in lock_call_nodes:
                return
            op = self.blocking_op(call)
            if op is not None:
                summary.blocking.append((call, op))
            resolved = tuple(self.project.resolve_call(call, info, local_types))
            summary.calls.append(CallSite(node=call, held=held, resolved=resolved))

        for child in ast.iter_child_nodes(info.node):
            handle(child, ())
        return summary

    @staticmethod
    def blocking_op(call: ast.Call) -> str | None:
        """The blocking operation a call performs directly, or ``None``."""
        dotted = _dotted_name(call.func)
        if dotted in BLOCKING_QUALIFIED_CALLS:
            return dotted
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr in BLOCKING_ATTR_CALLS:
                return f".{attr}()"
            # File-handle writes: ``handle.write(...)`` blocks; exclude
            # the csv/StringIO-ish ``writer.writerow`` shapes by keying on
            # the exact method name only.
            if attr == "write":
                return ".write()"
        return None

    # ------------------------------------------------------------------ #
    # transitive queries (memoized, recursion-guarded)
    # ------------------------------------------------------------------ #

    def transitive_acquisitions(
        self, func: FunctionInfo, _stack: frozenset[str] = frozenset()
    ) -> frozenset[LockAcquisition]:
        """Every lock the function may acquire, directly or via callees."""
        qual = func.qualname
        if qual in self._acq_memo:
            return self._acq_memo[qual]
        if qual in _stack:
            return frozenset()
        summary = self.summaries.get(qual)
        if summary is None:
            return frozenset()
        acquired = set(summary.acquisitions)
        stack = _stack | {qual}
        for site in summary.calls:
            for callee in site.resolved:
                acquired |= self.transitive_acquisitions(callee, stack)
        result = frozenset(acquired)
        # Memoizing inside a cycle would freeze a partial result; caching
        # only top-level completions keeps the math right and still makes
        # the pass near-linear (the tree has no deep recursion).
        if not _stack:
            self._acq_memo[qual] = result
        return result

    def transitive_blocking(
        self, func: FunctionInfo, _stack: frozenset[str] = frozenset()
    ) -> tuple[str, tuple[str, ...]] | None:
        """``(op, call chain)`` to the nearest blocking op, or ``None``."""
        qual = func.qualname
        if qual in self._block_memo:
            return self._block_memo[qual]
        if qual in _stack:
            return None
        summary = self.summaries.get(qual)
        if summary is None:
            return None
        if summary.blocking:
            result: tuple[str, tuple[str, ...]] | None = (
                summary.blocking[0][1],
                (qual,),
            )
            self._block_memo[qual] = result
            return result
        stack = _stack | {qual}
        for site in summary.calls:
            for callee in site.resolved:
                deeper = self.transitive_blocking(callee, stack)
                if deeper is not None:
                    result = (deeper[0], (qual, *deeper[1]))
                    self._block_memo[qual] = result
                    return result
        # A negative answer inside a recursion cycle may be an artifact of
        # the guard; only cache it when computed from the top.
        if not _stack:
            self._block_memo[qual] = None
        return None

    def raise_capable(
        self, func: FunctionInfo, depth: int = 3, _stack: frozenset[str] = frozenset()
    ) -> bool:
        """Whether the function (or a callee, to ``depth``) may raise."""
        qual = func.qualname
        if qual in self._raise_memo:
            return self._raise_memo[qual]
        if qual in _stack or depth < 0:
            return False
        summary = self.summaries.get(qual)
        if summary is None:
            return False
        if summary.has_raise or any(
            isinstance(node, ast.Raise) for node in ast.walk(summary.func.node)
        ):
            self._raise_memo[qual] = True
            return True
        stack = _stack | {qual}
        for site in summary.calls:
            for callee in site.resolved:
                if self.raise_capable(callee, depth - 1, stack):
                    self._raise_memo[qual] = True
                    return True
        if not _stack:
            self._raise_memo[qual] = False
        return False

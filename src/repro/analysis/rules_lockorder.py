"""Lock-order rule: the global lock-acquisition graph must be acyclic.

Every ``(held, acquired)`` pair the summary pass witnesses — a nested
``with`` in one function, or a call made while holding a lock into a
function that (transitively) acquires another — becomes an edge in one
project-wide directed graph over canonical lock identities
(``PlacementService._fleet_lock``, ``GatherTableCache._lock`` …).  A
cycle in that graph is a potential deadlock: two threads taking the
locks in opposite orders can each end up waiting on the other.  A
*self*-edge on a non-reentrant lock is the single-thread version —
re-acquiring a plain ``threading.Lock`` (or the writer-preferring
``ReadWriteLock``, which is not reentrant even read-under-read once a
writer queues between) while already holding it blocks forever.
``RLock`` self-edges are fine and skipped.

Findings name **both** acquisition sites of the offending edge pair, so
a report reads as the interleaving that deadlocks.  The same edge set is
rendered as a Graphviz DOT artifact (:func:`lock_graph_dot`) which CI
uploads per run — the reviewed picture of the tree's lock hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.core import Finding, Rule, register_rule
from repro.analysis.callgraph import ProjectIndex
from repro.analysis.summaries import LockAcquisition, table_for

__all__ = ["LockOrderRule", "collect_lock_edges", "lock_graph_dot"]


@dataclass(frozen=True)
class LockEdge:
    """One witnessed ordering: ``acquired`` taken while ``holder`` held."""

    holder: LockAcquisition
    acquired: LockAcquisition
    #: Qualname of the function the acquisition happens in (for labels).
    via: str


def collect_lock_edges(project: ProjectIndex) -> dict[tuple[str, str], LockEdge]:
    """All lock-order edges of a project, one witness per (src, dst) pair."""
    table = table_for(project)
    edges: dict[tuple[str, str], LockEdge] = {}

    def witness(holder: LockAcquisition, acquired: LockAcquisition, via: str) -> None:
        key = (holder.lock, acquired.lock)
        edges.setdefault(key, LockEdge(holder=holder, acquired=acquired, via=via))

    for summary in table.summaries.values():
        qual = summary.func.qualname
        for holder, acquired in summary.order_edges:
            witness(holder, acquired, qual)
        for site in summary.calls:
            if not site.held:
                continue
            for callee in site.resolved:
                for acquired in table.transitive_acquisitions(callee):
                    for holder in site.held:
                        witness(holder, acquired, callee.qualname)
    return edges


def _cycles(edges: dict[tuple[str, str], LockEdge]) -> list[list[str]]:
    """Minimal cycles of the lock graph: self-loops plus one cycle per SCC."""
    graph: dict[str, set[str]] = {}
    for src, dst in edges:
        graph.setdefault(src, set()).add(dst)
        graph.setdefault(dst, set())
    cycles: list[list[str]] = []
    for node in sorted(graph):
        if node in graph[node]:
            cycles.append([node, node])

    # Tarjan SCCs (iterative); every SCC with >1 node contains a cycle.
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0
    for root in sorted(graph):
        if root in index:
            continue
        work: list[tuple[str, list[str], int]] = [(root, sorted(graph[root]), 0)]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succs, pos = work.pop()
            advanced = False
            while pos < len(succs):
                succ = succs[pos]
                pos += 1
                if succ not in index:
                    work.append((node, succs, pos))
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, sorted(graph[succ]), 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            if low[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    # One concrete cycle per non-trivial SCC, found by DFS inside it.
    for component in sccs:
        members = set(component)
        start = component[0]
        path = [start]
        seen = {start}

        def dfs(node: str) -> list[str] | None:
            for succ in sorted(graph[node]):
                if succ not in members:
                    continue
                if succ == start:
                    return [*path, start]
                if succ in seen:
                    continue
                seen.add(succ)
                path.append(succ)
                found = dfs(succ)
                if found is not None:
                    return found
                path.pop()
            return None

        cycle = dfs(start)
        if cycle is not None:
            cycles.append(cycle)
    return cycles


def _snippet(project: ProjectIndex, path: str, line: int) -> str:
    for module in project.modules.values():
        if module.path == path:
            if 1 <= line <= len(module.lines):
                return module.lines[line - 1].strip()
            return ""
    return ""


@register_rule
class LockOrderRule(Rule):
    """Report cycles in the global lock-acquisition graph as deadlocks."""

    rule_id = "lock-order"
    description = (
        "the project-wide lock-acquisition graph must be acyclic; a cycle "
        "(or re-acquiring a non-reentrant lock) is a potential deadlock"
    )

    def check_interprocedural(self, project: ProjectIndex) -> list[Finding]:
        edges = collect_lock_edges(project)
        findings: list[Finding] = []
        for cycle in _cycles(edges):
            hops = list(zip(cycle, cycle[1:]))
            if len(hops) == 1:  # self-loop: reacquisition
                src, dst = hops[0]
                edge = edges[(src, dst)]
                if edge.acquired.reentrant:
                    continue
                anchor = edge.acquired
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=anchor.path,
                        line=anchor.line,
                        message=(
                            f"non-reentrant lock {dst} re-acquired at "
                            f"{anchor.path}:{anchor.line} (via {edge.via}) while "
                            f"already held from {edge.holder.path}:"
                            f"{edge.holder.line} — self-deadlock"
                        ),
                        hint=(
                            "release before re-entering, or make the inner path "
                            "a _locked variant that assumes the lock is held"
                        ),
                        snippet=_snippet(project, anchor.path, anchor.line),
                    )
                )
                continue
            legs = [
                f"{dst} acquired at {edges[(src, dst)].acquired.path}:"
                f"{edges[(src, dst)].acquired.line} while holding {src} "
                f"(taken at {edges[(src, dst)].holder.path}:"
                f"{edges[(src, dst)].holder.line})"
                for src, dst in hops
            ]
            anchor = edges[hops[0]].acquired
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=anchor.path,
                    line=anchor.line,
                    message=(
                        "lock-order cycle (potential deadlock): "
                        + " -> ".join(cycle)
                        + "; "
                        + "; ".join(legs)
                    ),
                    hint=(
                        "pick one global acquisition order for these locks and "
                        "restructure the call paths to follow it"
                    ),
                    snippet=_snippet(project, anchor.path, anchor.line),
                )
            )
        return findings


def lock_graph_dot(project: ProjectIndex, root: "Path | None" = None) -> str:
    """The lock-acquisition graph as Graphviz DOT (the CI artifact)."""
    edges = collect_lock_edges(project)
    nodes = sorted({lock for pair in edges for lock in pair})
    lines = ["digraph lock_order {", "  rankdir=LR;"]
    for node in nodes:
        lines.append(f'  "{node}";')
    for (src, dst), edge in sorted(edges.items()):
        site = edge.acquired.path
        if root is not None:
            try:
                site = Path(site).resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                pass
        label = f"{site}:{edge.acquired.line}"
        lines.append(f'  "{src}" -> "{dst}" [label="{label}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"

"""Broad-except rule: the service layer reports typed failures.

PR 5 gave every service failure mode a typed exception
(:class:`~repro.exceptions.ReproError` and subclasses), which is what
makes drain eviction, journal detachment, and replay verification
explainable.  A ``except Exception:`` (or a bare ``except:``) in
``repro.service`` silently swallows *bugs* along with the typed failures
— exactly how the drain handler once ate a mid-loop unwind.

This rule flags broad handlers (``except:``, ``except Exception``,
``except BaseException``, or tuples containing either) in any
``repro.service`` module, with one principled exemption: a handler whose
body re-raises via a bare ``raise`` (cleanup-and-propagate, e.g. the
atomic snapshot writer unlinking its staging file) keeps the error
flowing and is allowed.  A deliberate top-level catch-all — a request
loop that must survive anything — can carry an explicit
``# lint: allow(broad-except)`` pragma, which documents the decision at
the site.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, Rule, SourceModule, register_rule

__all__ = ["BroadExceptRule"]

_BROAD_NAMES: frozenset[str] = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    exprs = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return any(
        isinstance(expr, ast.Name) and expr.id in _BROAD_NAMES for expr in exprs
    )


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains a bare ``raise`` (propagates)."""
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


@register_rule
class BroadExceptRule(Rule):
    """Flag broad/bare excepts in ``repro.service`` outside re-raise paths."""

    rule_id = "broad-except"
    description = (
        "no bare/broad except in repro.service: catch the typed ReproError "
        "family and let unexpected errors propagate"
    )

    def check_module(self, module: SourceModule) -> list[Finding]:
        if not (
            module.module == "repro.service"
            or module.module.startswith("repro.service.")
        ):
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node) or _reraises(node):
                continue
            findings.append(
                module.finding(
                    self.rule_id,
                    node,
                    "broad except swallows bugs along with typed failures",
                    "catch the typed exceptions (ReproError family, OSError, "
                    "ValueError) and re-raise anything unexpected; a deliberate "
                    "request-loop catch-all takes # lint: allow(broad-except)",
                )
            )
        return findings

"""Output renderers for the lint runner: text, GitHub, SARIF.

``text`` is the human default (``file:line: [rule] message  (fix: …)``).
``github`` emits workflow commands (``::error file=…,line=…``) that the
CI lint job surfaces as PR line annotations.  ``sarif`` emits a minimal
SARIF 2.1.0 document for anything that ingests the standard format.
Each renderer is deterministic for a given finding list — the golden
tests in ``tests/test_static_analysis.py`` pin the exact output.
"""

from __future__ import annotations

import json

from repro.analysis.core import RULES, Finding

__all__ = ["FORMATS", "render_findings"]

#: Recognized ``--format`` values.
FORMATS: tuple[str, ...] = ("text", "github", "sarif")


def _escape_github(text: str) -> str:
    """Escape a workflow-command message (the documented %-encodings)."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def render_text(findings: list[Finding]) -> str:
    return "\n".join(finding.format() for finding in findings)


def render_github(findings: list[Finding]) -> str:
    lines = []
    for finding in findings:
        lines.append(
            f"::error file={finding.path},line={finding.line},"
            f"endLine={finding.end_line},title={finding.rule}::"
            f"{_escape_github(finding.message)}"
        )
    return "\n".join(lines)


def render_sarif(findings: list[Finding]) -> str:
    rule_ids = sorted({finding.rule for finding in findings})
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": RULES[rule_id].description
                if rule_id in RULES
                else rule_id
            },
        }
        for rule_id in rule_ids
    ]
    results = [
        {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "endLine": finding.end_line,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "soar-repro-lint",
                        "informationUri": "",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_findings(findings: list[Finding], fmt: str) -> str:
    """Render findings in one of :data:`FORMATS`."""
    if fmt == "text":
        return render_text(findings)
    if fmt == "github":
        return render_github(findings)
    if fmt == "sarif":
        return render_sarif(findings)
    raise ValueError(f"unknown format {fmt!r} (known: {', '.join(FORMATS)})")

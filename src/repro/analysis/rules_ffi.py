"""FFI-contract rule: the C prototypes and the ctypes declarations agree.

The compiled backend (:mod:`repro.core.engine_compiled`) calls into
``_gather_kernels.c`` through hand-written ctypes prototypes.  Nothing
checks those two sides against each other: add a parameter to a C kernel
and forget the ``argtypes`` list, and the call site passes garbage — at
best a crash, at worst silently corrupted tables that the numpy-fallback
CI leg can never notice.  (ctypes validates dtype and contiguity of what
the *Python* side declares; it cannot see what the *C* side expects.)

This rule closes the loop statically: it regexes the ``repro_*``
declarations out of the C source, parses the
``library.repro_*.argtypes / .restype`` assignments out of
``engine_compiled.py``'s AST, and cross-checks

* the symbol sets (every C kernel declared in Python and vice versa),
* the arity of every prototype,
* the *kind* of every argument — pointer element type (``double*`` vs
  ``_f64``…) and scalar width (``int64_t`` vs ``c_longlong``,
  ``int32_t`` vs ``c_int32``),
* the return type (``void`` vs ``restype = None``, ``double`` vs
  ``c_double``).

Everything is parsed, not loaded, so the check runs identically with or
without a compiler (both CI legs run it).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.core import Finding, Rule, register_rule

__all__ = ["FfiContractRule", "check_ffi", "parse_c_prototypes", "parse_ctypes_decls"]

#: C base types the kernels use, mapped to the shared kind vocabulary.
_C_BASE: dict[str, str] = {
    "double": "f64",
    "int64_t": "i64",
    "int32_t": "i32",
    "uint8_t": "u8",
}

#: ctypes-side tokens in ``engine_compiled.py`` mapped to the same kinds.
_PY_TOKENS: dict[str, tuple[str, str]] = {
    "_f64": ("ptr", "f64"),
    "_i64": ("ptr", "i64"),
    "_i32": ("ptr", "i32"),
    "_u8": ("ptr", "u8"),
    "_ll": ("scalar", "i64"),
    "c_longlong": ("scalar", "i64"),
    "c_int64": ("scalar", "i64"),
    "c_int32": ("scalar", "i32"),
    "c_double": ("scalar", "f64"),
}

_C_DECL = re.compile(
    r"^[ \t]*(?P<ret>void|double|int64_t|int32_t|uint8_t)[ \t]+"
    r"(?P<name>repro_\w+)[ \t]*\((?P<params>[^)]*)\)",
    re.MULTILINE | re.DOTALL,
)


@dataclass(frozen=True)
class Prototype:
    """One side's view of a kernel: argument kinds and return kind."""

    name: str
    args: tuple[tuple[str, str], ...]
    restype: tuple[str, str] | None  # None encodes void
    line: int


def _c_param_kind(param: str) -> tuple[str, str] | None:
    tokens = param.replace("*", " * ").split()
    tokens = [token for token in tokens if token != "const"]
    if not tokens:
        return None
    base = _C_BASE.get(tokens[0])
    if base is None:
        return None
    is_pointer = "*" in tokens
    return ("ptr" if is_pointer else "scalar", base)


def parse_c_prototypes(text: str) -> dict[str, Prototype]:
    """All ``repro_*`` declarations in the C source, by symbol name."""
    prototypes: dict[str, Prototype] = {}
    for match in _C_DECL.finditer(text):
        name = match.group("name")
        line = text.count("\n", 0, match.start()) + 1
        ret = match.group("ret")
        restype = None if ret == "void" else ("scalar", _C_BASE.get(ret, ret))
        args: list[tuple[str, str]] = []
        params = match.group("params").strip()
        if params and params != "void":
            for param in params.split(","):
                kind = _c_param_kind(param.strip())
                if kind is not None:
                    args.append(kind)
        prototypes[name] = Prototype(
            name=name, args=tuple(args), restype=restype, line=line
        )
    return prototypes


def _py_token_kind(node: ast.expr) -> tuple[str, str] | None:
    if isinstance(node, ast.Name):
        return _PY_TOKENS.get(node.id)
    if isinstance(node, ast.Attribute):
        return _PY_TOKENS.get(node.attr)
    return None


def parse_ctypes_decls(text: str) -> dict[str, Prototype]:
    """The ``<lib>.repro_*.argtypes / .restype`` assignments, by symbol.

    Only symbols with an ``argtypes`` list count as declared; a stray
    ``restype`` without ``argtypes`` surfaces as a symbol mismatch.
    """
    tree = ast.parse(text)
    argtypes: dict[str, tuple[tuple[tuple[str, str], ...], int]] = {}
    restypes: dict[str, tuple[tuple[str, str] | None, int]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Attribute):
            continue
        owner = target.value
        if not isinstance(owner, ast.Attribute) or not owner.attr.startswith("repro_"):
            continue
        symbol = owner.attr
        if target.attr == "argtypes" and isinstance(node.value, (ast.List, ast.Tuple)):
            kinds: list[tuple[str, str]] = []
            for element in node.value.elts:
                kind = _py_token_kind(element)
                kinds.append(kind if kind is not None else ("unknown", "unknown"))
            argtypes[symbol] = (tuple(kinds), node.lineno)
        elif target.attr == "restype":
            value = node.value
            if isinstance(value, ast.Constant) and value.value is None:
                restypes[symbol] = (None, node.lineno)
            else:
                restypes[symbol] = (_py_token_kind(value), node.lineno)
    prototypes: dict[str, Prototype] = {}
    for symbol, (kinds, line) in argtypes.items():
        restype, _ = restypes.get(symbol, (None, line))
        prototypes[symbol] = Prototype(
            name=symbol, args=kinds, restype=restype, line=line
        )
    return prototypes


def _kind_str(kind: tuple[str, str] | None) -> str:
    if kind is None:
        return "void"
    shape, base = kind
    return f"{base}*" if shape == "ptr" else base


def check_ffi(
    c_text: str,
    py_text: str,
    c_path: str = "src/repro/core/_gather_kernels.c",
    py_path: str = "src/repro/core/engine_compiled.py",
) -> list[Finding]:
    """Cross-check the two prototype sets; pure so tests can perturb either."""
    rule = FfiContractRule.rule_id
    c_protos = parse_c_prototypes(c_text)
    py_protos = parse_ctypes_decls(py_text)
    findings: list[Finding] = []

    def finding(path: str, line: int, message: str, hint: str) -> Finding:
        return Finding(
            rule=rule, path=path, line=line, message=message, hint=hint,
            snippet=message,
        )

    for name in sorted(set(c_protos) - set(py_protos)):
        findings.append(
            finding(
                c_path,
                c_protos[name].line,
                f"C kernel {name} has no ctypes prototype in engine_compiled.py",
                "declare argtypes/restype in _configure()",
            )
        )
    for name in sorted(set(py_protos) - set(c_protos)):
        findings.append(
            finding(
                py_path,
                py_protos[name].line,
                f"ctypes prototype {name} has no declaration in _gather_kernels.c",
                "remove the prototype or add the kernel",
            )
        )
    for name in sorted(set(c_protos) & set(py_protos)):
        c_proto, py_proto = c_protos[name], py_protos[name]
        if len(c_proto.args) != len(py_proto.args):
            findings.append(
                finding(
                    py_path,
                    py_proto.line,
                    f"{name}: arity mismatch — C declares {len(c_proto.args)} "
                    f"parameters, argtypes lists {len(py_proto.args)}",
                    "make the argtypes list match the C parameter list "
                    "position by position",
                )
            )
            continue
        for position, (c_kind, py_kind) in enumerate(
            zip(c_proto.args, py_proto.args)
        ):
            if c_kind != py_kind:
                findings.append(
                    finding(
                        py_path,
                        py_proto.line,
                        f"{name}: argument {position} kind mismatch — C "
                        f"declares {_kind_str(c_kind)}, argtypes says "
                        f"{_kind_str(py_kind)}",
                        "align the ctypes token with the C parameter type",
                    )
                )
        if c_proto.restype != py_proto.restype:
            findings.append(
                finding(
                    py_path,
                    py_proto.line,
                    f"{name}: return-type mismatch — C returns "
                    f"{_kind_str(c_proto.restype)}, restype says "
                    f"{_kind_str(py_proto.restype)}",
                    "set restype to match the C return type (None for void)",
                )
            )
    return findings


@register_rule
class FfiContractRule(Rule):
    """Cross-check ``_gather_kernels.c`` against ``engine_compiled.py``."""

    rule_id = "ffi-contract"
    description = (
        "every repro_* C prototype matches the ctypes argtypes/restype "
        "declaration (symbols, arity, argument kinds, return type)"
    )

    def check_project(self, root: Path) -> list[Finding]:
        c_path = root / "src" / "repro" / "core" / "_gather_kernels.c"
        py_path = root / "src" / "repro" / "core" / "engine_compiled.py"
        missing = [path for path in (c_path, py_path) if not path.exists()]
        if missing:
            return [
                Finding(
                    rule=self.rule_id,
                    path=str(path),
                    line=1,
                    message="FFI contract source missing",
                    hint="the compiled backend ships both files",
                    snippet="missing file",
                )
                for path in missing
            ]
        return check_ffi(
            c_path.read_text(),
            py_path.read_text(),
            c_path=str(c_path),
            py_path=str(py_path),
        )

"""Benchmark regenerating Figure 10 (Appendix A): scaling on larger binary trees.

Claims reproduced: with ``k = 1%`` of the network the normalized utilization
*improves* (drops) as the network grows; with ``k = log n`` the improvement
shrinks with size; and the fraction of switches needed for a 30 / 50 / 70 %
reduction decreases as the network grows (70% is reachable with only a few
percent of the switches on BT(4096)).
"""

from __future__ import annotations

import pytest

from repro.core.engine import COMPILED_ENGINE, FLAT_ENGINE, REFERENCE_ENGINE
from repro.core.engine_compiled import HAVE_COMPILED
from repro.experiments.fig9_runtime import run_engine_comparison
from repro.experiments.fig10_scaling import (
    run_fig10_required_fraction,
    run_fig10_utilization,
)
from repro.experiments.harness import ExperimentConfig

SIZES = (256, 512, 1024, 2048, 4096)


@pytest.mark.benchmark(group="fig10 scaling")
def test_fig10_utilization_scaling(benchmark, emit_rows):
    config = ExperimentConfig(network_size=256, repetitions=3, seed=2021)
    rows = benchmark.pedantic(
        run_fig10_utilization, kwargs={"sizes": SIZES, "config": config}, rounds=1, iterations=1
    )
    emit_rows(rows, "fig10a", "Figure 10a: normalized utilization for k = 1%, log n, sqrt n")

    series = {
        rule: {row["network_size"]: row["normalized_utilization"] for row in rows if row["budget_rule"] == rule}
        for rule in ("1%", "log(n)", "sqrt(n)", "all-blue")
    }
    # 1% of a larger network is more switches, so the curve improves with n.
    assert series["1%"][4096] < series["1%"][512]
    # With only log n blue nodes, the relative benefit shrinks as n grows.
    assert series["log(n)"][4096] > series["log(n)"][256]
    # sqrt(n) sits between the two and all-blue lower-bounds everything.
    for size in SIZES:
        assert series["all-blue"][size] <= series["sqrt(n)"][size] + 1e-9
        assert series["sqrt(n)"][size] <= series["log(n)"][size] + 1e-9
    # Paper's headline: ~1% of nodes already saves more than a third of the
    # utilization at BT(512) and more than half at BT(4096).
    assert series["1%"][512] < 0.75
    assert series["1%"][4096] < 0.55


@pytest.mark.benchmark(group="fig10 scaling")
def test_fig10_required_fraction(benchmark, emit_rows):
    config = ExperimentConfig(network_size=256, repetitions=3, seed=2021)
    rows = benchmark.pedantic(
        run_fig10_required_fraction,
        kwargs={"sizes": SIZES, "config": config},
        rounds=1,
        iterations=1,
    )
    emit_rows(rows, "fig10b", "Figure 10b: % blue nodes needed for 30/50/70% savings")

    series = {
        target: {row["network_size"]: row["percent_blue_nodes"] for row in rows if row["target_reduction"] == target}
        for target in (0.3, 0.5, 0.7)
    }
    for size in SIZES:
        # Larger targets need more switches.
        assert series[0.3][size] <= series[0.5][size] <= series[0.7][size]
    # The required fraction shrinks with network size.
    for target in (0.3, 0.5, 0.7):
        assert series[target][4096] <= series[target][256]
    # Paper's numbers: 70% saving on BT(4096) with < 3% blue, 50% with < 1%.
    # Our calibrated power-law load is slightly less skewed than the paper's
    # sample, so allow a small margin on the 70% target (measured ≈ 3.2%).
    assert series[0.7][4096] < 4.0
    assert series[0.5][4096] < 1.0


@pytest.mark.benchmark(group="fig10 scaling")
def test_fig10_engine_speedup(benchmark, emit_rows):
    """Flat vs reference gather at the largest Figure 10 size.

    BT(4096) with the figure's ``k = 1%`` budget rule (k = 40) is the
    gather run the whole scaling figure is bound by; the flat engine must
    beat the per-node reference implementation by at least 3x there.
    """
    largest = SIZES[-1]
    config = ExperimentConfig(network_size=largest, repetitions=3, seed=2021)
    rows = benchmark.pedantic(
        run_engine_comparison,
        kwargs={
            "sizes": (largest,),
            "budget": max(1, largest // 100),
            "config": config,
            "engines": (REFERENCE_ENGINE, FLAT_ENGINE, COMPILED_ENGINE),
        },
        rounds=1,
        iterations=1,
    )
    emit_rows(
        rows,
        "fig10_engines",
        "Figure 10 scale: reference vs flat vs compiled gather (best-of-3)",
    )
    (row,) = rows
    assert row["flat_speedup"] >= 3.0, (
        f"flat engine speedup {row['flat_speedup']:.2f}x on BT({largest}) "
        "is below the 3x bar"
    )
    if HAVE_COMPILED:
        # The C kernels release the GIL *and* beat the numpy kernels; at
        # the largest Figure 10 size the margin is the widest.
        assert row["compiled_speedup"] > row["flat_speedup"], (
            f"compiled engine ({row['compiled_speedup']:.2f}x) no faster than "
            f"flat ({row['flat_speedup']:.2f}x) on BT({largest})"
        )

"""Benchmark regenerating Figure 11 (Appendix B): scale-free tree networks.

Claims reproduced: on an SF(128) sample the degree heuristic (Max) is far
from optimal — the paper's sample saves roughly 70% of the messages when
switching to SOAR; and on growing SF(n) networks the ``k = sqrt(n)`` budget
keeps the normalized utilization roughly flat (around 40% of all-red) while
``k = log n`` slowly loses ground.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig11_scalefree import run_fig11_example, run_fig11_scaling
from repro.experiments.harness import ExperimentConfig

SIZES = (256, 512, 1024, 2048, 4096)


@pytest.mark.benchmark(group="fig11 scale-free")
def test_fig11_example(benchmark, emit_rows):
    rows = benchmark.pedantic(
        run_fig11_example,
        kwargs={"size": 128, "budget": 4, "seed": 2021, "samples": 10},
        rounds=1,
        iterations=1,
    )
    emit_rows(rows, "fig11ab", "Figure 11a/b: Max(degree) vs SOAR on SF(128), k = 4")

    by_strategy = {row["strategy"]: row["utilization"] for row in rows}
    # SOAR never loses to the degree heuristic ...
    assert by_strategy["SOAR"] <= by_strategy["Max(degree)"] + 1e-9
    # ... and four blue nodes already remove a large share of the all-red
    # utilization on a 127-switch scale-free tree.  (The paper's single
    # sample shows a ~70% gap to Max(degree); across random RPA samples the
    # gap to Max is smaller, which EXPERIMENTS.md discusses.)
    assert by_strategy["saving vs all-red"] > 0.3
    assert by_strategy["saving vs Max"] >= 0.0


@pytest.mark.benchmark(group="fig11 scale-free")
def test_fig11_scaling(benchmark, emit_rows):
    config = ExperimentConfig(network_size=256, repetitions=3, seed=2021)
    rows = benchmark.pedantic(
        run_fig11_scaling, kwargs={"sizes": SIZES, "config": config}, rounds=1, iterations=1
    )
    emit_rows(rows, "fig11c", "Figure 11c: SF(n) scaling for k = 1%, log n, sqrt n")

    series = {
        rule: {row["network_size"]: row["normalized_utilization"] for row in rows if row["budget_rule"] == rule}
        for rule in ("1%", "log(n)", "sqrt(n)")
    }
    # sqrt(n) keeps the normalized utilization roughly flat and below log(n).
    for size in SIZES:
        assert series["sqrt(n)"][size] <= series["log(n)"][size] + 1e-9
    spread = max(series["sqrt(n)"].values()) - min(series["sqrt(n)"].values())
    assert spread < 0.25
    # 1% improves with network size (more absolute budget).
    assert series["1%"][4096] <= series["1%"][256] + 1e-9

"""Benchmark regenerating Figure 9 / Section 5.4: SOAR running times.

The absolute seconds differ from the paper's laptop (and this implementation
vectorizes the inner loops with numpy), but the shape must hold: the gather
phase dominates, grows roughly quadratically in ``k`` and near-linearly in
``n``, while the colouring phase is orders of magnitude cheaper.

This file benchmarks the two phases directly with pytest-benchmark (so the
timing statistics come from the benchmark machinery itself) and additionally
regenerates the full Figure 9 grid via the experiment module.
"""

from __future__ import annotations

import pytest

from repro.core.color import COLOR_KERNELS
from repro.core.engine import (
    COMPILED_ENGINE,
    DEFAULT_ENGINE,
    ENGINES,
    FLAT_ENGINE,
    REFERENCE_ENGINE,
    gather,
)
from repro.core.engine_compiled import HAVE_COMPILED
from repro.experiments.fig9_runtime import (
    run_color_comparison,
    run_engine_comparison,
    run_fig9,
)
from repro.experiments.harness import ExperimentConfig
from repro.topology.binary_tree import bt_network
from repro.workload.distributions import PowerLawLoadDistribution, sample_leaf_loads


def _network(size: int, seed: int = 2021):
    tree = bt_network(size)
    return tree.with_loads(sample_leaf_loads(tree, PowerLawLoadDistribution(), rng=seed))


@pytest.mark.benchmark(group="fig9 gather phase")
@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("size", [256, 512, 1024, 2048])
def test_gather_scaling_in_network_size(benchmark, size, engine):
    tree = _network(size)
    benchmark(gather, tree, 32, engine=engine)


@pytest.mark.benchmark(group="fig9 gather phase")
@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("budget", [4, 16, 64, 128])
def test_gather_scaling_in_budget(benchmark, budget, engine):
    tree = _network(1024)
    benchmark(gather, tree, budget, engine=engine)


@pytest.mark.benchmark(group="fig9 color phase")
@pytest.mark.parametrize("color", sorted(COLOR_KERNELS))
@pytest.mark.parametrize("size", [256, 1024])
def test_color_phase(benchmark, size, color):
    tree = _network(size)
    gathered = gather(tree, 32, engine=DEFAULT_ENGINE)
    benchmark(COLOR_KERNELS[color], tree, gathered)


@pytest.mark.benchmark(group="fig9 color comparison")
def test_color_comparison(benchmark, emit_rows):
    """Batched vs reference colour trace on the Figure 9 sizes."""
    config = ExperimentConfig(network_size=256, repetitions=3, seed=2021)
    rows = benchmark.pedantic(
        run_color_comparison,
        kwargs={"sizes": (256, 512, 1024, 2048), "budget": 32, "config": config},
        rounds=1,
        iterations=1,
    )
    emit_rows(rows, "fig9_colors", "Colour kernels: batched vs reference (best-of-3)")
    for row in rows:
        # run_color_comparison already asserts identical placements; the
        # batched kernel must never be slower than the per-node trace it
        # replaces, and must beat it clearly at service scale.
        assert row["batched_speedup"] > 1.0
        if row["network_size"] >= 1024:
            assert row["batched_speedup"] >= 3.0


@pytest.mark.benchmark(group="fig9 engine comparison")
def test_engine_comparison(benchmark, emit_rows):
    """Reference vs flat vs compiled gather on the Figure 9 sizes."""
    config = ExperimentConfig(network_size=256, repetitions=3, seed=2021)
    rows = benchmark.pedantic(
        run_engine_comparison,
        kwargs={
            "sizes": (256, 512, 1024, 2048),
            "budget": 32,
            "config": config,
            "engines": (REFERENCE_ENGINE, FLAT_ENGINE, COMPILED_ENGINE),
        },
        rounds=1,
        iterations=1,
    )
    emit_rows(
        rows, "fig9_engines", "Gather engines: reference vs flat vs compiled (best-of-3)"
    )
    for row in rows:
        # run_engine_comparison already asserts identical costs; the flat
        # engine must never be slower than the reference it replaces, and
        # the C kernels (when a compiler exists — otherwise "compiled" is
        # the numpy fallback and only has to hold flat's ground) must beat
        # the numpy kernels they replace.
        assert row["flat_speedup"] > 1.0
        if HAVE_COMPILED:
            assert row["compiled_speedup"] > row["flat_speedup"]
        else:
            assert row["compiled_speedup"] > 1.0


@pytest.mark.benchmark(group="fig9 full grid")
def test_fig9_grid(benchmark, emit_rows):
    config = ExperimentConfig(network_size=256, repetitions=2, seed=2021)
    rows = benchmark.pedantic(
        run_fig9,
        kwargs={"sizes": (256, 512, 1024, 2048), "budgets": (4, 8, 16, 32, 64, 128), "config": config},
        rounds=1,
        iterations=1,
    )
    emit_rows(rows, "fig9", "Figure 9: SOAR-Gather / SOAR-Color running time")

    by_pair = {(row["network_size"], row["k"]): row for row in rows}
    # Gather time grows with n and with k.
    assert by_pair[(2048, 128)]["gather_seconds"] > by_pair[(256, 128)]["gather_seconds"]
    assert by_pair[(2048, 128)]["gather_seconds"] > by_pair[(2048, 4)]["gather_seconds"]
    # The colouring phase is at least an order of magnitude cheaper everywhere
    # (the paper reports roughly three orders of magnitude for its
    # unvectorized gather implementation).
    for row in rows:
        assert row["color_seconds"] < row["gather_seconds"] / 10.0

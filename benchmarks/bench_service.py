"""Benchmark: multi-tenant placement-service throughput under churn.

Replays a seeded 200-request churn trace (recurring workload pool, tenant
arrivals/departures, occasional drains) through a fresh
:class:`repro.service.PlacementService` and reports throughput, per-kind
latency, cache hit rate, and the warm/cold latency split.  The CSV written
to ``benchmarks/results/service_throughput.csv`` is the service-layer
counterpart of the Figure 9 runtime table: ``cold_mean_ms`` is what every
request would cost without the gather-table cache, ``warm_mean_ms`` is what
cache hits actually cost, and ``warm_speedup`` is the multiplier the
subsystem exists for (≥ 10x on BT(1024), asserted by the acceptance test in
``tests/test_service.py``).
"""

from __future__ import annotations

import pytest

from repro.experiments.service_replay import report_rows
from repro.service.driver import replay_trace
from repro.service.events import generate_churn_trace
from repro.topology.binary_tree import bt_network
from repro.workload.rates import apply_rate_scheme

#: The acceptance-scale scenario: 200 requests over BT(1024).
TRACE_REQUESTS = 200
BUDGET = 16
CAPACITY = 4


def _scenario(size: int, seed: int = 2021):
    tree = apply_rate_scheme(bt_network(size), "constant")
    trace = generate_churn_trace(
        tree, TRACE_REQUESTS, seed=seed, budget=BUDGET, workload_pool=8
    )
    return tree, trace


@pytest.mark.benchmark(group="service churn replay")
@pytest.mark.parametrize("size", [256, 1024])
def test_service_churn_replay(benchmark, emit_rows, size):
    """Replay the churn trace end to end (fresh service every round)."""
    tree, trace = _scenario(size)

    report = benchmark(lambda: replay_trace(tree, trace, capacity=CAPACITY))

    rows = report_rows(
        report,
        {
            "network_size": size,
            "requests": TRACE_REQUESTS,
            "budget": BUDGET,
            "capacity": CAPACITY,
        },
    )
    emit_rows(
        rows,
        f"service_throughput_bt{size}",
        f"Service churn replay on BT({size}): throughput and cache hit rate",
    )
    if size == 1024:
        # Also persist the acceptance-scale scenario under the canonical
        # name the CI benchmark job publishes.
        emit_rows(rows, "service_throughput", "Service throughput (BT(1024), 200 requests)")
    # Sanity: the cache must be doing real work on a recurring-pool trace.
    assert report.hit_rate > 0.2
    assert report.warm_speedup > 1.0


@pytest.mark.benchmark(group="service cold vs warm")
@pytest.mark.parametrize("size", [1024])
def test_service_verified_replay(benchmark, emit_rows, size):
    """Replay with full differential verification enabled (cost of trust)."""
    tree, trace = _scenario(size)

    report = benchmark(
        lambda: replay_trace(tree, trace, capacity=CAPACITY, verify=True)
    )

    assert report.verified > 0
    emit_rows(
        report_rows(
            report,
            {
                "network_size": size,
                "requests": TRACE_REQUESTS,
                "budget": BUDGET,
                "capacity": CAPACITY,
            },
        ),
        f"service_throughput_verified_bt{size}",
        f"Verified service churn replay on BT({size})",
    )

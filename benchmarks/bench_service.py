"""Benchmark: multi-tenant placement-service throughput under churn.

Replays a seeded 200-request churn trace (recurring workload pool, tenant
arrivals/departures, occasional drains) through a fresh
:class:`repro.service.PlacementService` and reports throughput, per-kind
latency, cache hit rate, and the warm/cold latency split.  The CSV written
to ``benchmarks/results/service_throughput.csv`` is the service-layer
counterpart of the Figure 9 runtime table: ``cold_mean_ms`` is what every
request would cost without the gather-table cache, ``warm_mean_ms`` is what
cache hits actually cost, and ``warm_speedup`` is the multiplier the
subsystem exists for (≥ 10x on BT(1024), asserted by the acceptance test in
``tests/test_service.py``).

The summary row further splits the warm side by cache layer:
``table_hit_mean_ms`` is the latency of a gather-table hit (batched
colour trace + flat cost recompute, the two phases the batched kernels
own) and ``memo_hit_mean_ms`` the digest-lookup latency of a
solution-memo hit.  The dedicated warm-path benchmark below compares
three generations of the same hit — the current artifact path
(``GatherTable.place`` with the flat cost kernel), the PR 3 path it
replaced (batched trace + per-node cost recompute), and the legacy PR 2
path (workload-network rebuild + per-node trace + per-node cost) — plus
the isolated cost phase under each :data:`repro.core.cost.COST_KERNELS`
entry.  Asserted on BT(1024): ≥ 3x over legacy and ≥ 2x over the PR 3
warm path, with the ``cost_kernel_speedup`` column recording the flat
kernel's own multiplier.  ``python benchmarks/bench_service.py --quick``
runs the warm-path scenario standalone (the CI smoke step), writing
``benchmarks/results/service_throughput_warm_smoke.csv``; the canonical
``service_throughput.csv`` is produced by the churn-replay benchmark at
acceptance scale with the same warm-path columns appended.

The repair benchmark (:func:`repair_rows`) times the PR 9 delta-repair
path against the cold gather it replaces: one switch flips availability
(the single-switch drain of the service's churn traces) and the cached
gather table is patched along the dirtied ancestor chain instead of
being rebuilt from scratch.  Every repaired table is asserted
bit-identical to the cold gather (full DP tensors, placements, costs)
before its time is trusted; ``repair_speedup = cold_ms / repaired_ms``
must be ≥ 5x for the single-switch row on BT(1024).  ``python
benchmarks/bench_service.py --repair`` runs the comparison standalone,
writing ``benchmarks/results/service_repair_bt1024.csv`` (or the BT(256)
variant with ``--quick``).

The concurrency benchmark (:func:`concurrency_rows`) replays the same
trace serially, with a 4-thread worker pool (mutating requests stay
barriers), and with a 4-process Λ-epoch replica pool
(``mode="process"``, the GIL-free path), asserts the response payloads
of every run are identical to the serial one, and reports the
``workers`` / ``mode`` / ``cpu_cores`` / ``concurrent_speedup`` columns —
the service's concurrent request loop must buy wall-clock only, never
different answers.  ``python benchmarks/bench_service.py --concurrency``
runs the comparison standalone (the CI concurrency-smoke step), writing
``benchmarks/results/service_concurrency_bt256.csv``; the latency gate
(process speedup > 1) is enforced only where the scheduler grants ≥ 2
cores, since a single-core container can only measure contention.
"""

from __future__ import annotations

import argparse
import sys
import time

import pytest

from repro.core.color import soar_color
from repro.core.cost import evaluate_cost, utilization_cost
from repro.core.solver import Solver
from repro.experiments.service_replay import ROW_COLUMNS, report_rows
from repro.service.driver import replay_trace
from repro.service.events import generate_churn_trace
from repro.topology.binary_tree import bt_network
from repro.workload.distributions import PowerLawLoadDistribution, sample_leaf_loads
from repro.workload.rates import apply_rate_scheme

#: The acceptance-scale scenario: 200 requests over BT(1024).
TRACE_REQUESTS = 200
BUDGET = 16
CAPACITY = 4


def _scenario(size: int, seed: int = 2021):
    tree = apply_rate_scheme(bt_network(size), "constant")
    trace = generate_churn_trace(
        tree, TRACE_REQUESTS, seed=seed, budget=BUDGET, workload_pool=8
    )
    return tree, trace


@pytest.mark.benchmark(group="service churn replay")
@pytest.mark.parametrize("size", [256, 1024])
def test_service_churn_replay(benchmark, emit_rows, size):
    """Replay the churn trace end to end (fresh service every round)."""
    tree, trace = _scenario(size)

    report = benchmark(lambda: replay_trace(tree, trace, capacity=CAPACITY))

    rows = report_rows(
        report,
        {
            "network_size": size,
            "requests": TRACE_REQUESTS,
            "budget": BUDGET,
            "capacity": CAPACITY,
        },
    )
    emit_rows(
        rows,
        f"service_throughput_bt{size}",
        f"Service churn replay on BT({size}): throughput and cache hit rate",
    )
    if size == 1024:
        # Also persist the acceptance-scale scenario under the canonical
        # name the CI benchmark job publishes, with the warm table-hit
        # latency split (incl. the cost-kernel columns) appended.
        emit_rows(
            rows + warm_path_report_rows(size),
            "service_throughput",
            "Service throughput (BT(1024), 200 requests)",
        )
    # Sanity: the cache must be doing real work on a recurring-pool trace.
    assert report.hit_rate > 0.2
    assert report.warm_speedup > 1.0


def _best_of(function, rounds: int = 25) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


#: Memo of :func:`warm_path_rows` per (size, rounds): the churn-replay
#: benchmark and the dedicated warm-path benchmark both publish the same
#: measurement, which should be paid once per process (two BT(1024)
#: gathers plus four timed paths are not free).
_WARM_PATH_MEMO: dict[tuple[int, int], list[dict]] = {}


def warm_path_rows(size: int, rounds: int = 25) -> list[dict]:
    """Compare three generations of the warm table-hit path.

    ``table_hit_ms`` is what a gather-table cache hit costs now — one
    ``GatherTable.place`` call: the batched colour trace plus the flat
    cost-kernel recompute, no tree reconstruction and no per-node walk.
    ``pr3_warm_ms`` re-enacts the PR 3 warm path (same batched trace, but
    the per-node ``utilization_cost`` recompute), ``legacy_warm_ms`` the
    PR 2 path (rebuild the workload network from the request loads, run
    the per-node reference trace, recompute the cost per node).
    ``cost_flat_ms`` / ``cost_reference_ms`` isolate the cost phase the
    two differ by.  Identical outputs, different machinery — every path
    is asserted bit-identical before its time is trusted.
    """
    memoized = _WARM_PATH_MEMO.get((size, rounds))
    if memoized is not None:
        return [dict(row) for row in memoized]
    tree = apply_rate_scheme(bt_network(size), "constant")
    loads = sample_leaf_loads(tree, PowerLawLoadDistribution(), rng=2021)
    workload = tree.with_loads(loads)
    table = Solver().gather(workload, BUDGET)
    pr3_table = Solver(cost_kernel="reference").gather(workload, BUDGET)

    placement = table.place(BUDGET)
    pr3_placement = pr3_table.place(BUDGET)
    assert pr3_placement.blue_nodes == placement.blue_nodes
    assert pr3_placement.cost == placement.cost

    def legacy_warm_hit():
        rebuilt = tree.with_loads(loads)
        blue = soar_color(rebuilt, table.result)
        return blue, utilization_cost(rebuilt, blue)

    legacy_blue, legacy_cost = legacy_warm_hit()
    assert legacy_blue == placement.blue_nodes and legacy_cost == placement.cost

    blue = placement.blue_nodes
    model = table.cost_model()
    assert evaluate_cost(workload, blue, model=model) == utilization_cost(workload, blue)

    table_hit_s = _best_of(lambda: table.place(BUDGET), rounds)
    pr3_warm_s = _best_of(lambda: pr3_table.place(BUDGET), rounds)
    legacy_s = _best_of(legacy_warm_hit, rounds)
    cost_flat_s = _best_of(lambda: evaluate_cost(workload, blue, model=model), rounds)
    cost_reference_s = _best_of(lambda: utilization_cost(workload, blue), rounds)
    rows = [
        {
            "network_size": size,
            "budget": BUDGET,
            "row": "warm_path",
            "table_hit_ms": 1e3 * table_hit_s,
            "pr3_warm_ms": 1e3 * pr3_warm_s,
            "legacy_warm_ms": 1e3 * legacy_s,
            "cost_flat_ms": 1e3 * cost_flat_s,
            "cost_reference_ms": 1e3 * cost_reference_s,
            "cost_kernel_speedup": (
                cost_reference_s / cost_flat_s if cost_flat_s else 0.0
            ),
            "warm_speedup_vs_pr3": pr3_warm_s / table_hit_s if table_hit_s else 0.0,
            "warm_path_speedup": legacy_s / table_hit_s if table_hit_s else 0.0,
        }
    ]
    _WARM_PATH_MEMO[(size, rounds)] = [dict(row) for row in rows]
    return rows


def warm_path_report_rows(size: int, rounds: int = 25) -> list[dict]:
    """:func:`warm_path_rows` normalized onto the unified CSV column set."""
    return [
        {column: row.get(column, "") for column in ROW_COLUMNS}
        for row in warm_path_rows(size, rounds=rounds)
    ]


@pytest.mark.benchmark(group="service warm path")
@pytest.mark.parametrize("size", [256, 1024])
def test_warm_table_hit_colour_only(benchmark, emit_rows, size):
    """The warm path must beat legacy ≥ 3x and the PR 3 path ≥ 2x on BT(1024)."""
    rows = benchmark.pedantic(
        warm_path_rows, kwargs={"size": size}, rounds=1, iterations=1
    )
    emit_rows(
        rows,
        f"service_warm_path_bt{size}",
        f"Warm table-hit path on BT({size}): flat-cost vs PR 3 vs legacy",
    )
    assert rows[0]["warm_path_speedup"] > 1.0
    assert rows[0]["cost_kernel_speedup"] > 1.0
    if size >= 1024:
        assert rows[0]["warm_path_speedup"] >= 3.0
        assert rows[0]["warm_speedup_vs_pr3"] >= 2.0


#: Column order of the repair-benchmark CSV (``service_repair_bt*.csv``).
#: ``depth`` is the tree depth of the deepest flipped switch — the length
#: of the dirtied ancestor chain the repair actually recomputes — and
#: ``repair_speedup`` is the headline ``cold_ms / repaired_ms`` multiplier.
REPAIR_COLUMNS: tuple[str, ...] = (
    "network_size",
    "budget",
    "engine",
    "row",
    "delta_size",
    "depth",
    "cold_ms",
    "repaired_ms",
    "repair_speedup",
)


def repair_rows(
    size: int, rounds: int = 25, delta_sizes: tuple[int, ...] = (1, 2, 4, 8)
) -> list[dict]:
    """Time delta repair against the cold gather it replaces.

    For every registered repair-capable engine and every delta size, flip
    the ``delta_size`` deepest available switches (the worst case: the
    longest dirtied ancestor chains), then measure a cold gather at the
    churned availability versus :meth:`GatherTable.repair` on the cached
    table.  Before any time is trusted the repaired table is asserted
    bit-identical to the cold gather: every *valid* cell of the flat DP
    tensors (rows beyond a node's depth are ``np.empty`` garbage in a
    cold gather and never read — see :func:`repro.core.engine.flat_gather`
    — so they are masked out), every breadcrumb, the placement, and the
    cost.  The thorough differential (chained repairs, both backend legs,
    ``exact_k``) lives in ``tests/test_repair.py``; this assertion keeps
    the benchmark honest about *what* it is timing.
    """
    import numpy as np

    from repro.core.engine import REPAIRERS

    tree = apply_rate_scheme(bt_network(size), "constant")
    loads = sample_leaf_loads(tree, PowerLawLoadDistribution(), rng=2021)
    workload = tree.with_loads(loads)
    # Deepest switches first: their ancestor chains span the full height,
    # so the measured repair never flatters itself with a shallow flip.
    candidates = sorted(
        workload.available, key=lambda node: (-workload.depth(node), node)
    )
    rows: list[dict] = []
    for engine in sorted(REPAIRERS):
        solver = Solver(engine=engine)
        table = solver.gather(workload, BUDGET)
        for delta_size in delta_sizes:
            delta = frozenset(candidates[:delta_size])
            churned = workload.with_available(workload.available ^ delta)
            cold = solver.gather(churned, BUDGET)
            repaired = table.repair(delta)
            rows_axis = cold.result.flat.y_red.shape[0]
            valid = (
                np.arange(rows_axis)[:, None, None] <= cold.result.flat.depth[None, None, :]
            )
            for field in ("y_red", "y_blue"):
                assert np.array_equal(
                    np.where(valid, getattr(repaired.result.flat, field), 0.0),
                    np.where(valid, getattr(cold.result.flat, field), 0.0),
                ), f"repaired {field} diverged from the cold gather ({engine})"
            for field in ("splits_red", "splits_blue"):
                assert np.array_equal(
                    getattr(repaired.result.flat, field),
                    getattr(cold.result.flat, field),
                ), f"repaired {field} diverged from the cold gather ({engine})"
            cold_place = cold.place(BUDGET)
            repaired_place = repaired.place(BUDGET)
            assert repaired_place.blue_nodes == cold_place.blue_nodes
            assert repaired_place.cost == cold_place.cost

            cold_s = _best_of(lambda: solver.gather(churned, BUDGET), rounds)
            repaired_s = _best_of(lambda: table.repair(delta), rounds)
            rows.append(
                {
                    "network_size": size,
                    "budget": BUDGET,
                    "engine": engine,
                    "row": "repair",
                    "delta_size": delta_size,
                    "depth": max(workload.depth(node) for node in delta),
                    "cold_ms": 1e3 * cold_s,
                    "repaired_ms": 1e3 * repaired_s,
                    "repair_speedup": cold_s / repaired_s if repaired_s else 0.0,
                }
            )
    return rows


@pytest.mark.benchmark(group="service repair")
@pytest.mark.parametrize("size", [256, 1024])
def test_repair_vs_cold_gather(benchmark, emit_rows, size):
    """Delta repair must beat the cold gather ≥ 5x single-switch on BT(1024)."""
    rows = benchmark.pedantic(
        repair_rows, kwargs={"size": size}, rounds=1, iterations=1
    )
    emit_rows(
        [{column: row.get(column, "") for column in REPAIR_COLUMNS} for row in rows],
        f"service_repair_bt{size}",
        f"Delta repair vs cold gather on BT({size})",
    )
    for row in rows:
        assert row["repair_speedup"] > 1.0, (
            f"repair slower than cold gather: {row}"
        )
    if size >= 1024:
        for row in rows:
            if row["delta_size"] == 1:
                assert row["repair_speedup"] >= 5.0, (
                    f"single-switch repair only {row['repair_speedup']:.2f}x "
                    f"on {row['engine']}"
                )


@pytest.mark.benchmark(group="service repair replay")
@pytest.mark.parametrize("size", [256])
def test_service_repair_replay(benchmark, size):
    """Churn replay with repair on vs off: identical payloads, repairs engaged.

    The same seeded trace is replayed through a repair-enabled service and
    a ``max_repair_delta=0`` (legacy invalidate-on-drain) service; the
    response payloads must be identical — repair buys latency, never
    different answers — and the enabled run must actually exercise the
    path (``repair_hits > 0``), which is also the CI smoke gate.
    """
    from repro.service.api import PlacementService
    from repro.service.driver import response_payload

    tree, trace = _scenario(size)

    def replay(max_repair_delta: int):
        service = PlacementService(
            tree, CAPACITY, max_repair_delta=max_repair_delta
        )
        return replay_trace(tree, trace, service=service)

    repaired_report = benchmark.pedantic(
        replay, kwargs={"max_repair_delta": 8}, rounds=1, iterations=1
    )
    legacy_report = replay(max_repair_delta=0)

    repaired_payloads = [
        response_payload(record.response) for record in repaired_report.records
    ]
    legacy_payloads = [
        response_payload(record.response) for record in legacy_report.records
    ]
    assert repaired_payloads == legacy_payloads, (
        "repair-enabled replay diverged from the invalidate-on-drain replay"
    )
    assert repaired_report.repair_hits > 0
    assert repaired_report.repairs > 0
    assert legacy_report.repairs == 0


def concurrency_rows(
    size: int,
    scenarios: tuple[tuple[int, str], ...] = ((1, "thread"), (4, "thread"), (4, "process")),
    requests: int = TRACE_REQUESTS,
) -> list[dict]:
    """Replay the same churn trace serially and concurrently and compare.

    One summary-style row per ``(workers, mode)`` scenario; every
    multi-worker row carries ``concurrent_speedup`` (serial wall over
    concurrent wall — the concurrency column of the service CSV) and
    ``cpu_cores`` (the cores the scheduler actually granted, without which
    the speedup number cannot be interpreted: a 1-core container can only
    ever measure contention, never parallelism).  Before any time is
    trusted, the response payloads of every run are asserted identical to
    the serial run (:func:`repro.service.driver.response_payload`): the
    concurrent loop must buy wall-clock only, never different answers.
    """
    import os

    from repro.service.driver import response_payload

    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    tree = apply_rate_scheme(bt_network(size), "constant")
    trace = generate_churn_trace(
        tree, requests, seed=2021, budget=BUDGET, workload_pool=8
    )
    rows: list[dict] = []
    baseline_payloads: list | None = None
    baseline_wall = 0.0
    for count, mode in scenarios:
        report = replay_trace(tree, trace, capacity=CAPACITY, workers=count, mode=mode)
        payloads = [response_payload(record.response) for record in report.records]
        if baseline_payloads is None:
            baseline_payloads, baseline_wall = payloads, report.wall_s
        else:
            assert payloads == baseline_payloads, (
                f"{count}-worker {mode} replay diverged from the serial payloads"
            )
        rows.append(
            {
                "network_size": size,
                "requests": requests,
                "budget": BUDGET,
                "capacity": CAPACITY,
                "cpu_cores": cores,
                "row": "concurrency",
                **report.summary_row(),
                "concurrent_speedup": (
                    baseline_wall / report.wall_s
                    if count > 1 and report.wall_s > 0
                    else ""
                ),
            }
        )
    return rows


@pytest.mark.benchmark(group="service concurrent replay")
@pytest.mark.parametrize("size", [256])
def test_service_concurrent_replay(benchmark, emit_rows, size):
    """Serial vs 4-worker thread and process replays: identical payloads."""
    import os

    rows = benchmark.pedantic(
        concurrency_rows, kwargs={"size": size}, rounds=1, iterations=1
    )
    emit_rows(
        [{column: row.get(column, "") for column in ROW_COLUMNS} for row in rows],
        f"service_concurrency_bt{size}",
        f"Concurrent churn replay on BT({size}): serial vs 4 threads vs 4 processes",
    )
    assert [(row["workers"], row["mode"]) for row in rows] == [
        (1, "serial"),
        (4, "thread"),
        (4, "process"),
    ]
    for row in rows[1:]:
        assert row["concurrent_speedup"] != ""
    # The hard bar everywhere is payload identity (asserted inside
    # concurrency_rows).  The latency bar applies to process mode only and
    # only where parallelism is physically possible: with one core the pool
    # can measure nothing but scheduling contention.
    cores = rows[0]["cpu_cores"]
    if cores >= 2:
        process_row = rows[-1]
        assert float(process_row["concurrent_speedup"]) > 1.0, (
            f"process mode slower than serial on {cores} cores"
        )


@pytest.mark.benchmark(group="service cold vs warm")
@pytest.mark.parametrize("size", [1024])
def test_service_verified_replay(benchmark, emit_rows, size):
    """Replay with full differential verification enabled (cost of trust)."""
    tree, trace = _scenario(size)

    report = benchmark(
        lambda: replay_trace(tree, trace, capacity=CAPACITY, verify=True)
    )

    assert report.verified > 0
    emit_rows(
        report_rows(
            report,
            {
                "network_size": size,
                "requests": TRACE_REQUESTS,
                "budget": BUDGET,
                "capacity": CAPACITY,
            },
        ),
        f"service_throughput_verified_bt{size}",
        f"Verified service churn replay on BT({size})",
    )


# --------------------------------------------------------------------------- #
# standalone warm-hit smoke (the CI step)
# --------------------------------------------------------------------------- #


def main(argv: list[str] | None = None) -> int:
    """Run the warm table-hit scenario standalone and persist the CSV.

    ``--quick`` shrinks the network to BT(256) with fewer timing rounds
    (what ``.github/workflows/ci.yml`` runs as the warm-hit smoke step);
    the full run covers BT(1024) and enforces the acceptance bars.  In
    either mode the measured row (written to
    ``service_throughput_warm_smoke.csv`` by default) must carry a
    populated ``cost_kernel_speedup`` column above 1 — a blank or
    non-positive value means the flat cost kernel silently stopped
    pulling its weight.
    """
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="BT(256), fewer rounds (CI smoke)"
    )
    parser.add_argument(
        "--concurrency",
        action="store_true",
        help="run the serial/thread/process replay comparison instead "
        "(writes service_concurrency_bt256.csv)",
    )
    parser.add_argument(
        "--repair",
        action="store_true",
        help="run the delta-repair vs cold-gather comparison instead "
        "(writes service_repair_bt1024.csv, or the BT(256) variant with --quick)",
    )
    parser.add_argument(
        "--csv",
        default=None,
        help="output CSV path (default: benchmarks/results/service_throughput_warm_smoke.csv)",
    )
    args = parser.parse_args(argv)

    from pathlib import Path

    from repro.utils.tables import render_table, write_csv

    if args.repair:
        size = 256 if args.quick else 1024
        rounds = 5 if args.quick else 25
        rows = repair_rows(size, rounds=rounds)
        normalized = [
            {column: row.get(column, "") for column in REPAIR_COLUMNS} for row in rows
        ]
        print(render_table(normalized, title=f"Delta repair vs cold gather on BT({size})"))
        # Explicit raises, not asserts: these gates must survive `python -O`.
        # Bit-identity to the cold gather was already asserted per row
        # inside repair_rows before any time was trusted.
        for row in rows:
            if float(row["repair_speedup"]) <= 1.0:
                raise SystemExit(
                    f"repair slower than cold gather on {row['engine']} "
                    f"(delta {row['delta_size']}: {row['repair_speedup']:.2f}x)"
                )
            if not args.quick and row["delta_size"] == 1 and (
                float(row["repair_speedup"]) < 5.0
            ):
                raise SystemExit(
                    f"single-switch repair only {row['repair_speedup']:.2f}x "
                    f"over the cold gather on {row['engine']} (need ≥ 5x)"
                )
        default_path = Path(__file__).parent / "results" / f"service_repair_bt{size}.csv"
        path = write_csv(normalized, Path(args.csv) if args.csv else default_path)
        print(f"wrote {len(normalized)} rows to {path}")
        return 0

    if args.concurrency:
        size = 256
        rows = concurrency_rows(size)
        normalized = [
            {column: row.get(column, "") for column in ROW_COLUMNS} for row in rows
        ]
        print(
            render_table(
                normalized,
                title=f"Concurrent churn replay on BT({size}): serial vs thread vs process",
            )
        )
        process_row = rows[-1]
        if process_row["mode"] != "process" or process_row["concurrent_speedup"] == "":
            raise SystemExit("process-mode concurrency row missing")
        cores = int(process_row["cpu_cores"])
        speedup = float(process_row["concurrent_speedup"])
        # Payload identity was already asserted inside concurrency_rows for
        # every scenario; the latency gate below needs real parallelism.
        if cores >= 2 and speedup <= 1.0:
            raise SystemExit(
                f"process-mode replay slower than serial ({speedup:.2f}x on {cores} cores)"
            )
        if cores < 2:
            print(
                f"single-core environment: measured {speedup:.2f}x records "
                "scheduling contention only; latency gate skipped"
            )
        default_path = (
            Path(__file__).parent / "results" / f"service_concurrency_bt{size}.csv"
        )
        path = write_csv(normalized, Path(args.csv) if args.csv else default_path)
        print(f"wrote {len(normalized)} rows to {path}")
        return 0

    size = 256 if args.quick else 1024
    rounds = 10 if args.quick else 25
    rows = warm_path_report_rows(size, rounds=rounds)
    row = rows[0]
    print(render_table(rows, title=f"Warm table-hit path on BT({size})"))

    # Explicit raises, not asserts: this gate must survive `python -O`.
    if row["cost_kernel_speedup"] == "":
        raise SystemExit("cost_kernel_speedup column is empty")
    if float(row["cost_kernel_speedup"]) <= 1.0:
        raise SystemExit(
            "flat cost kernel is not faster than the reference walk "
            f"({row['cost_kernel_speedup']})"
        )
    if not args.quick and float(row["warm_speedup_vs_pr3"]) < 2.0:
        raise SystemExit(
            f"warm hit only {row['warm_speedup_vs_pr3']}x over the PR 3 path"
        )

    # Written under its own name, like the serve-replay smoke: the
    # canonical service_throughput.csv stays the acceptance-scale churn
    # replay (with these warm-path columns appended by the benchmark),
    # never a reduced-scale smoke row.
    default_path = Path(__file__).parent / "results" / "service_throughput_warm_smoke.csv"
    path = write_csv(rows, Path(args.csv) if args.csv else default_path)
    print(f"wrote {len(rows)} rows to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke step
    sys.exit(main())

"""Benchmark: multi-tenant placement-service throughput under churn.

Replays a seeded 200-request churn trace (recurring workload pool, tenant
arrivals/departures, occasional drains) through a fresh
:class:`repro.service.PlacementService` and reports throughput, per-kind
latency, cache hit rate, and the warm/cold latency split.  The CSV written
to ``benchmarks/results/service_throughput.csv`` is the service-layer
counterpart of the Figure 9 runtime table: ``cold_mean_ms`` is what every
request would cost without the gather-table cache, ``warm_mean_ms`` is what
cache hits actually cost, and ``warm_speedup`` is the multiplier the
subsystem exists for (≥ 10x on BT(1024), asserted by the acceptance test in
``tests/test_service.py``).

The summary row further splits the warm side by cache layer:
``table_hit_mean_ms`` is the colour-only latency of a gather-table hit
(the phase the batched colour kernel owns) and ``memo_hit_mean_ms`` the
digest-lookup latency of a solution-memo hit.  The dedicated warm-path
benchmark below compares the artifact path (``GatherTable.place``) against
the legacy warm path it replaced (workload-network rebuild + per-node
trace + cost recompute) and asserts the ≥ 3x improvement on BT(1024).
"""

from __future__ import annotations

import time

import pytest

from repro.core.color import soar_color
from repro.core.cost import utilization_cost
from repro.core.solver import Solver
from repro.experiments.service_replay import report_rows
from repro.service.driver import replay_trace
from repro.service.events import generate_churn_trace
from repro.topology.binary_tree import bt_network
from repro.workload.distributions import PowerLawLoadDistribution, sample_leaf_loads
from repro.workload.rates import apply_rate_scheme

#: The acceptance-scale scenario: 200 requests over BT(1024).
TRACE_REQUESTS = 200
BUDGET = 16
CAPACITY = 4


def _scenario(size: int, seed: int = 2021):
    tree = apply_rate_scheme(bt_network(size), "constant")
    trace = generate_churn_trace(
        tree, TRACE_REQUESTS, seed=seed, budget=BUDGET, workload_pool=8
    )
    return tree, trace


@pytest.mark.benchmark(group="service churn replay")
@pytest.mark.parametrize("size", [256, 1024])
def test_service_churn_replay(benchmark, emit_rows, size):
    """Replay the churn trace end to end (fresh service every round)."""
    tree, trace = _scenario(size)

    report = benchmark(lambda: replay_trace(tree, trace, capacity=CAPACITY))

    rows = report_rows(
        report,
        {
            "network_size": size,
            "requests": TRACE_REQUESTS,
            "budget": BUDGET,
            "capacity": CAPACITY,
        },
    )
    emit_rows(
        rows,
        f"service_throughput_bt{size}",
        f"Service churn replay on BT({size}): throughput and cache hit rate",
    )
    if size == 1024:
        # Also persist the acceptance-scale scenario under the canonical
        # name the CI benchmark job publishes.
        emit_rows(rows, "service_throughput", "Service throughput (BT(1024), 200 requests)")
    # Sanity: the cache must be doing real work on a recurring-pool trace.
    assert report.hit_rate > 0.2
    assert report.warm_speedup > 1.0


def _best_of(function, rounds: int = 25) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def warm_path_rows(size: int, rounds: int = 25) -> list[dict]:
    """Compare the artifact warm path against the legacy warm path.

    ``table_hit_ms`` is what a gather-table cache hit costs now — one
    ``GatherTable.place`` call: the batched colour trace plus the
    verification cost recompute, no tree reconstruction.  ``legacy_warm_ms``
    re-enacts what the same hit cost before the artifact API: rebuild the
    workload network from the request loads, run the per-node reference
    trace, recompute the cost.  Identical outputs, different machinery.
    """
    tree = apply_rate_scheme(bt_network(size), "constant")
    loads = sample_leaf_loads(tree, PowerLawLoadDistribution(), rng=2021)
    workload = tree.with_loads(loads)
    table = Solver().gather(workload, BUDGET)

    placement = table.place(BUDGET)

    def legacy_warm_hit():
        rebuilt = tree.with_loads(loads)
        blue = soar_color(rebuilt, table.result)
        return blue, utilization_cost(rebuilt, blue)

    legacy_blue, legacy_cost = legacy_warm_hit()
    assert legacy_blue == placement.blue_nodes and legacy_cost == placement.cost

    table_hit_s = _best_of(lambda: table.place(BUDGET), rounds)
    legacy_s = _best_of(legacy_warm_hit, rounds)
    return [
        {
            "network_size": size,
            "budget": BUDGET,
            "table_hit_ms": 1e3 * table_hit_s,
            "legacy_warm_ms": 1e3 * legacy_s,
            "warm_path_speedup": legacy_s / table_hit_s if table_hit_s else 0.0,
        }
    ]


@pytest.mark.benchmark(group="service warm path")
@pytest.mark.parametrize("size", [256, 1024])
def test_warm_table_hit_colour_only(benchmark, emit_rows, size):
    """The artifact warm path must beat the legacy warm path ≥ 3x on BT(1024)."""
    rows = benchmark.pedantic(
        warm_path_rows, kwargs={"size": size}, rounds=1, iterations=1
    )
    emit_rows(
        rows,
        f"service_warm_path_bt{size}",
        f"Warm table-hit (colour-only) path on BT({size}): artifact vs legacy",
    )
    assert rows[0]["warm_path_speedup"] > 1.0
    if size >= 1024:
        assert rows[0]["warm_path_speedup"] >= 3.0


@pytest.mark.benchmark(group="service cold vs warm")
@pytest.mark.parametrize("size", [1024])
def test_service_verified_replay(benchmark, emit_rows, size):
    """Replay with full differential verification enabled (cost of trust)."""
    tree, trace = _scenario(size)

    report = benchmark(
        lambda: replay_trace(tree, trace, capacity=CAPACITY, verify=True)
    )

    assert report.verified > 0
    emit_rows(
        report_rows(
            report,
            {
                "network_size": size,
                "requests": TRACE_REQUESTS,
                "budget": BUDGET,
                "capacity": CAPACITY,
            },
        ),
        f"service_throughput_verified_bt{size}",
        f"Verified service churn replay on BT({size})",
    )

"""Benchmark regenerating Figure 8: WC and PS use cases (utilization and bytes).

Claims reproduced (Section 5.3): the normalized utilization is identical for
WC and PS (the placement model is application-agnostic); byte savings for WC
lag the utilization savings because merged word-count messages keep growing;
PS bytes track utilization closely under 0.5 dropout; and relative to the
all-blue solution WC approaches 1x with only a few blue nodes while PS needs
many more.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig8_applications import run_fig8
from repro.experiments.harness import FIG8_BUDGETS


def _series(rows, application, distribution, field):
    return {
        row["k"]: row[field]
        for row in rows
        if row["application"] == application and row["distribution"] == distribution
    }


@pytest.mark.benchmark(group="fig8 applications")
def test_fig8_wordcount_and_paramserver(benchmark, bench_config, emit_rows):
    rows = benchmark.pedantic(
        run_fig8, kwargs={"config": bench_config}, rounds=1, iterations=1
    )
    emit_rows(rows, "fig8", "Figure 8: WC / PS utilization and byte complexity (BT(256))")

    for distribution in ("uniform", "power-law"):
        wc_util = _series(rows, "WC", distribution, "normalized_utilization")
        ps_util = _series(rows, "PS", distribution, "normalized_utilization")
        # Fig 8a: utilization is application independent.
        for k in FIG8_BUDGETS:
            assert wc_util[k] == pytest.approx(ps_util[k])

        wc_bytes = _series(rows, "WC", distribution, "bytes_vs_all_red")
        ps_bytes = _series(rows, "PS", distribution, "bytes_vs_all_red")
        for k in FIG8_BUDGETS:
            # Fig 8b: WC byte savings lag its utilization savings; PS bytes
            # stay close to the utilization curve.
            assert wc_bytes[k] >= wc_util[k] - 1e-9
            assert abs(ps_bytes[k] - ps_util[k]) < 0.2
            # Aggregation never increases bytes relative to all-red.
            assert wc_bytes[k] <= 1.0 + 1e-9
            assert ps_bytes[k] <= 1.0 + 1e-9

        # Fig 8c: with a few dozen blue nodes WC is much closer to the
        # all-blue byte count than PS is.
        wc_vs_blue = _series(rows, "WC", distribution, "bytes_vs_all_blue")
        ps_vs_blue = _series(rows, "PS", distribution, "bytes_vs_all_blue")
        assert wc_vs_blue[64] < ps_vs_blue[64]
        assert wc_vs_blue[64] >= 1.0 - 1e-9

"""Benchmark regenerating Figure 6: SOAR vs Top / Max / Level on BT(256).

The paper's claims reproduced here:

* SOAR has the lowest normalized utilization in every cell (it is optimal);
* under the power-law load the second-best strategy is Max, under the
  uniform load it is Level (for constant rates);
* a small ``k`` already yields a large reduction relative to all-red.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig6_strategies import run_fig6
from repro.experiments.harness import FIG6_BUDGETS


def _series(rows, distribution, scheme, strategy):
    return {
        row["k"]: row["normalized_utilization"]
        for row in rows
        if row["distribution"] == distribution
        and row["rate_scheme"] == scheme
        and row["strategy"] == strategy
    }


@pytest.mark.benchmark(group="fig6 strategies")
def test_fig6_strategy_sweep(benchmark, bench_config, emit_rows):
    rows = benchmark.pedantic(
        run_fig6, kwargs={"config": bench_config}, rounds=1, iterations=1
    )
    emit_rows(rows, "fig6", "Figure 6: normalized utilization vs k (BT(256))")

    for distribution in ("uniform", "power-law"):
        for scheme in ("constant", "linear", "exponential"):
            soar = _series(rows, distribution, scheme, "SOAR")
            for contender in ("Top", "Max", "Level"):
                other = _series(rows, distribution, scheme, contender)
                assert all(soar[k] <= other[k] + 1e-9 for k in FIG6_BUDGETS), (
                    distribution,
                    scheme,
                    contender,
                )
            # More aggregation budget never hurts.
            values = [soar[k] for k in FIG6_BUDGETS]
            assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))

    # Section 5.1 takeaway: the second-best strategy depends strongly on the
    # load distribution.  The skewed (power-law) load rescues Max — it gets
    # within striking distance of SOAR — while under the uniform load Max is
    # by far the worst and Level essentially matches SOAR.  (In the paper's
    # more heavy-tailed power-law sample Max edges out Level; with our
    # calibrated distribution Level stays slightly ahead — see EXPERIMENTS.md.)
    power_max = _series(rows, "power-law", "constant", "Max")[32]
    uniform_max = _series(rows, "uniform", "constant", "Max")[32]
    assert power_max < 0.5 < uniform_max
    uniform = {
        name: _series(rows, "uniform", "constant", name)[32]
        for name in ("Top", "Max", "Level")
    }
    assert uniform["Level"] == min(uniform.values())
    uniform_soar = _series(rows, "uniform", "constant", "SOAR")[32]
    assert uniform["Level"] <= uniform_soar + 0.01

    # A small fraction of blue nodes (k = 32 out of 255 switches) cuts the
    # utilization by well over half for the power-law workload.
    assert _series(rows, "power-law", "constant", "SOAR")[32] < 0.5

"""Ablation benchmarks beyond the paper's figures.

These cover the design decisions called out in DESIGN.md:

* **Budget semantics** — the default at-most-k mode versus the
  paper-literal exactly-k mode (identical on the paper's strictly-positive
  leaf loads, never worse in general).
* **Restricted availability** — how much of the optimum survives when only a
  fraction of the switches can aggregate (the incremental-upgrade scenario of
  the introduction).
* **Dataplane latency** — the event-driven dataplane's completion time for
  SOAR placements versus all-red, the objective the paper defers to future
  work.
* **Core building blocks** — micro-benchmarks of the utilization cost
  evaluation and of a single SOAR solve on BT(256), the operations every
  experiment is built from.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cost import all_red_cost, utilization_cost
from repro.core.solver import Solver
from repro.simulation.dataplane import simulate_reduce
from repro.topology.binary_tree import bt_network
from repro.utils.stats import mean_and_stderr
from repro.workload.distributions import PowerLawLoadDistribution, sample_leaf_loads


def _network(size: int = 256, seed: int = 2021):
    tree = bt_network(size)
    return tree.with_loads(sample_leaf_loads(tree, PowerLawLoadDistribution(), rng=seed))


@pytest.mark.benchmark(group="ablation building blocks")
def test_utilization_cost_evaluation(benchmark):
    tree = _network()
    blue = Solver().solve(tree, 16).blue_nodes
    benchmark(utilization_cost, tree, blue)


@pytest.mark.benchmark(group="ablation building blocks")
def test_single_soar_solve_bt256(benchmark):
    tree = _network()
    benchmark(solve, tree, 16)


@pytest.mark.benchmark(group="ablation budget semantics")
def test_exact_vs_at_most_budget_semantics(benchmark, emit_rows):
    def run() -> list[dict]:
        rows = []
        for seed in range(3):
            tree = _network(seed=seed)
            for budget in (4, 16, 64):
                at_most = Solver().solve(tree, budget).cost
                exact = Solver(exact_k=True).solve(tree, budget).cost
                rows.append(
                    {
                        "seed": seed,
                        "k": budget,
                        "at_most_k": at_most,
                        "exact_k": exact,
                        "gap": exact - at_most,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_rows(rows, "ablation_semantics", "Ablation: at-most-k vs exactly-k budget semantics")
    for row in rows:
        assert row["at_most_k"] <= row["exact_k"] + 1e-9
        # With strictly positive leaf loads the two semantics coincide.
        assert row["gap"] == pytest.approx(0.0, abs=1e-9)


@pytest.mark.benchmark(group="ablation availability")
def test_restricted_availability(benchmark, emit_rows):
    def run() -> list[dict]:
        rng = np.random.default_rng(3)
        tree = _network()
        budget = 16
        baseline = all_red_cost(tree)
        full = Solver().solve(tree, budget).cost
        rows = [
            {
                "available_fraction": 1.0,
                "normalized_utilization": full / baseline,
                "loss_vs_full_availability": 0.0,
            }
        ]
        switches = sorted(tree.switches, key=repr)
        for fraction in (0.5, 0.25, 0.1):
            values = []
            for _ in range(3):
                count = max(budget, int(len(switches) * fraction))
                chosen = rng.choice(len(switches), size=count, replace=False)
                restricted = tree.with_available([switches[int(i)] for i in chosen])
                values.append(Solver().solve(restricted, budget).cost / baseline)
            mean, _ = mean_and_stderr(values)
            rows.append(
                {
                    "available_fraction": fraction,
                    "normalized_utilization": mean,
                    "loss_vs_full_availability": mean - full / baseline,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_rows(rows, "ablation_availability", "Ablation: SOAR under restricted availability Λ")
    values = [row["normalized_utilization"] for row in rows]
    # Shrinking Λ can only hurt (weak monotonicity, allowing sampling noise).
    assert values[0] <= values[-1] + 1e-9
    for row in rows:
        assert row["normalized_utilization"] <= 1.0 + 1e-9


@pytest.mark.benchmark(group="ablation dataplane latency")
def test_dataplane_completion_time(benchmark, emit_rows):
    def run() -> list[dict]:
        tree = _network(size=64)
        baseline = simulate_reduce(tree, frozenset())
        rows = [
            {
                "k": 0,
                "completion_time": baseline.completion_time,
                "normalized_completion": 1.0,
                "bottleneck_busy": baseline.bottleneck_busy_time,
            }
        ]
        for budget in (2, 8, 31):
            blue = Solver().solve(tree, budget).blue_nodes
            result = simulate_reduce(tree, blue)
            rows.append(
                {
                    "k": budget,
                    "completion_time": result.completion_time,
                    "normalized_completion": result.completion_time / baseline.completion_time,
                    "bottleneck_busy": result.bottleneck_busy_time,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_rows(rows, "ablation_latency", "Ablation: dataplane completion time vs budget")
    # Aggregation relieves the congested core links, so with a saturating
    # budget the Reduce completes no later than the all-red run.
    assert rows[-1]["completion_time"] <= rows[0]["completion_time"] + 1e-9
    assert rows[-1]["bottleneck_busy"] <= rows[0]["bottleneck_busy"] + 1e-9

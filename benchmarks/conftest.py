"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure (or table-like claim) of the paper:
it runs the corresponding experiment module once inside pytest-benchmark's
timer, prints the resulting series as a text table, and writes the rows to
``benchmarks/results/<figure>.csv`` so they can be compared against the
paper or plotted externally.

Benchmarks run at the paper's network scale but with fewer repetitions than
the paper's ten (see ``BENCH_REPETITIONS``) to keep a full
``pytest benchmarks/ --benchmark-only`` run in the minutes range; pass
``--paper-scale`` to use ten repetitions.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.harness import ExperimentConfig
from repro.utils.tables import render_table, write_csv

#: Repetitions used by default in benchmarks (the paper uses 10).
BENCH_REPETITIONS = 3

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run benchmarks with the paper's full repetition count (10)",
    )


@pytest.fixture
def bench_config(request) -> ExperimentConfig:
    """BT(256), paper seed, benchmark repetition count."""
    repetitions = 10 if request.config.getoption("--paper-scale") else BENCH_REPETITIONS
    return ExperimentConfig(network_size=256, repetitions=repetitions, seed=2021)


@pytest.fixture
def emit_rows():
    """Print rows as a table and persist them under ``benchmarks/results``."""

    def _emit(rows: list[dict], name: str, title: str) -> None:
        print()
        print(render_table(rows, title=title))
        write_csv(rows, RESULTS_DIR / f"{name}.csv")

    return _emit

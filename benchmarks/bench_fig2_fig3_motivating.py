"""Benchmarks regenerating the motivating example (Figures 2 and 3).

Figure 2: Top = 27, Max = 24, Level = 21, SOAR = 20 on the 7-switch example
with ``k = 2``.  Figure 3: optimal costs 35 / 20 / 15 / 11 for ``k = 1..4``.
Both are exact golden values; the benchmark asserts them while timing the
solver on the small instance.
"""

from __future__ import annotations

import pytest

from repro.experiments.motivating import (
    FIGURE2_EXPECTED,
    FIGURE3_EXPECTED,
    run_budget_sweep,
    run_strategy_comparison,
)


@pytest.mark.benchmark(group="fig2-3 motivating example")
def test_fig2_strategy_comparison(benchmark, emit_rows):
    rows = benchmark(run_strategy_comparison)
    emit_rows(rows, "fig2", "Figure 2: strategies on the motivating example (k = 2)")
    measured = {row["strategy"]: row["utilization"] for row in rows}
    for name, expected in FIGURE2_EXPECTED.items():
        assert measured[name] == pytest.approx(expected)


@pytest.mark.benchmark(group="fig2-3 motivating example")
def test_fig3_budget_sweep(benchmark, emit_rows):
    rows = benchmark(run_budget_sweep)
    emit_rows(rows, "fig3", "Figure 3: optimal cost per budget on the motivating example")
    measured = {row["k"]: row["utilization"] for row in rows}
    for budget, expected in FIGURE3_EXPECTED.items():
        assert measured[budget] == pytest.approx(expected)

"""Benchmark regenerating Figure 7: online multi-workload aggregation.

Setup of Section 5.2: BT(256), per-workload budget k = 16, switch capacity
a(s) = 4, 32 workloads drawn from a 50/50 uniform / power-law mix.  The
claims reproduced: SOAR is the best strategy throughout the online run, the
normalized utilization degrades as more workloads exhaust the capacity, and
increasing the capacity improves every strategy except Top (whose root-heavy
placements saturate the top of the tree).
"""

from __future__ import annotations

import pytest

from repro.experiments.fig7_online import (
    run_fig7_capacity_sweep,
    run_fig7_workload_sweep,
)


@pytest.mark.benchmark(group="fig7 online")
def test_fig7_workload_sweep(benchmark, bench_config, emit_rows):
    rows = benchmark.pedantic(
        run_fig7_workload_sweep,
        kwargs={"config": bench_config, "rate_schemes": ("constant", "linear", "exponential")},
        rounds=1,
        iterations=1,
    )
    emit_rows(rows, "fig7_workloads", "Figure 7 (top): utilization vs number of workloads")

    for scheme in ("constant", "linear", "exponential"):
        series = {
            strategy: {
                row["num_workloads"]: row["normalized_utilization"]
                for row in rows
                if row["rate_scheme"] == scheme and row["strategy"] == strategy
            }
            for strategy in ("Top", "Max", "Level", "SOAR")
        }
        last = max(series["SOAR"])
        # SOAR is best at the end of the arrival sequence.
        for contender in ("Top", "Max", "Level"):
            assert series["SOAR"][last] <= series[contender][last] + 1e-9
        # Utilization degrades (grows) as capacity fills up.
        assert series["SOAR"][last] >= series["SOAR"][1] - 1e-9


@pytest.mark.benchmark(group="fig7 online")
def test_fig7_capacity_sweep(benchmark, bench_config, emit_rows):
    rows = benchmark.pedantic(
        run_fig7_capacity_sweep,
        kwargs={"config": bench_config, "rate_schemes": ("constant",), "capacities": (2, 4, 8, 16, 32)},
        rounds=1,
        iterations=1,
    )
    emit_rows(rows, "fig7_capacity", "Figure 7 (bottom): utilization vs switch capacity")

    series = {
        strategy: {
            row["capacity"]: row["normalized_utilization"]
            for row in rows
            if row["strategy"] == strategy
        }
        for strategy in ("Top", "Max", "Level", "SOAR")
    }
    # SOAR best at every capacity; more capacity helps SOAR.
    for capacity in (2, 4, 8, 16, 32):
        for contender in ("Top", "Max", "Level"):
            assert series["SOAR"][capacity] <= series[contender][capacity] + 1e-9
    assert series["SOAR"][32] <= series["SOAR"][2] + 1e-9

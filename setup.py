"""Setuptools shim.

This file exists only so that legacy editable installs
(``pip install -e . --no-use-pep517``) work in offline environments where
the ``wheel`` package is unavailable.

Packaging note for the compiled gather backend: the ``"compiled"`` engine
(:mod:`repro.core.engine_compiled`) adds **no Python dependency** — it
compiles ``src/repro/core/_gather_kernels.c`` at import time with whatever
system C compiler is on PATH (``$CC``, ``cc``, ``gcc``, or ``clang``),
caches the shared object under the platform cache directory, and loads it
via :mod:`ctypes`.  Distributions must ship that ``.c`` file as package
data alongside the Python sources; when it is missing, no compiler exists,
or ``REPRO_NO_COMPILED=1`` is set, every ``"compiled"`` registry entry
transparently falls back to the bit-identical numpy kernels.
"""

from setuptools import setup

setup(package_data={"repro.core": ["_gather_kernels.c"]})
